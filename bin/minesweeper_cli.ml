(* Command-line interface: verify properties of configuration files,
   simulate the control plane, and generate synthetic networks.

   Examples:
     minesweeper verify net.cfg --property reachability --source R1 \
       --dst-device R2 --dst-prefix 10.2.0.0/24
     minesweeper verify net.cfg --property blackholes --failures 1
     minesweeper simulate net.cfg --trace R1:10.2.0.9
     minesweeper gen fattree --pods 4
     minesweeper gen enterprise --routers 12 --seed 7 --hijack *)

open Cmdliner
module MS = Minesweeper
module A = Config.Ast

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_network path =
  try Config.Parser.parse_network (read_file path) with
  | Config.Parser.Parse_error e ->
    Printf.eprintf "%s\n" (Config.Parser.error_to_string ~file:path e);
    exit 2

(* ---- common args ---- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG" ~doc:"Configuration file.")

let opts_of ?(slice = false) naive failures =
  let base = if naive then MS.Options.naive else MS.Options.default in
  let base = if slice then MS.Options.with_slicing base else base in
  match failures with None -> base | Some k -> MS.Options.with_failures k base

(* ---- verify ---- *)

let verify_cmd =
  let property =
    Arg.(
      value
      & opt (enum
               [
                 ("reachability", `Reachability);
                 ("isolation", `Isolation);
                 ("bounded-length", `Bounded);
                 ("blackholes", `Blackholes);
                 ("loops", `Loops);
                 ("multipath-consistency", `Multipath);
                 ("acl-equivalence", `Acl_equiv);
                 ("local-equivalence", `Local_equiv);
                 ("no-leak", `Leak);
                 ("fault-invariance", `Fault);
               ])
          `Reachability
      & info [ "property"; "p" ] ~doc:"Property to verify.")
  in
  let sources =
    Arg.(value & opt (list string) [] & info [ "source"; "s" ] ~doc:"Source devices (default all).")
  in
  let dst_device =
    Arg.(value & opt (some string) None & info [ "dst-device" ] ~doc:"Destination device.")
  in
  let dst_prefix =
    Arg.(value & opt (some string) None & info [ "dst-prefix" ] ~doc:"Destination prefix.")
  in
  let bound = Arg.(value & opt int 4 & info [ "bound" ] ~doc:"Hop bound for bounded-length.") in
  let devices =
    Arg.(value & opt (list string) [] & info [ "devices" ] ~doc:"Device pair for equivalence.")
  in
  let max_len = Arg.(value & opt int 24 & info [ "max-len" ] ~doc:"Max exported length for no-leak.") in
  let failures =
    Arg.(value & opt (some int) None & info [ "failures"; "k" ] ~doc:"Verify under up to $(docv) link failures.")
  in
  let max_failures =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-failures" ] ~docv:"K"
          ~doc:
            "With $(b,--property fault-invariance): sweep k = 1..$(docv), one report per k. \
             Each k races the graph fast path (min-cut over the simulator's converged \
             forwarding) against the SMT strategy portfolio; the report's $(b,method) field \
             records which path answered (graph, smt, or fallback).")
  in
  let naive = Arg.(value & flag & info [ "naive" ] ~doc:"Disable the optimizations of \xc2\xa76.") in
  let slice =
    Arg.(value & flag & info [ "slice" ] ~doc:"Delete provably-dead policy clauses before encoding.")
  in
  let no_lint =
    Arg.(value & flag & info [ "no-lint" ] ~doc:"Skip the pre-flight lint of the configuration.")
  in
  let allowed =
    Arg.(value & opt (list string) [] & info [ "allowed" ] ~doc:"Devices allowed to drop (blackholes).")
  in
  let batch =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "batch" ]
          ~docv:"PROPS"
          ~doc:
            "Verify a comma-separated suite of properties in one incremental session: the \
             network is encoded and asserted once and every query reuses the solver's learned \
             state. Accepts the same names as $(b,--property) plus $(b,all-pairs) \
             (per-destination reachability from every other device). Example: \
             $(b,--batch reachability,blackholes,loops) or $(b,--batch all-pairs).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Shard the query suite across $(docv) worker processes, each running its shard on \
             its own incremental session. Results are reported in query order regardless of \
             completion order; 1 (the default) answers everything in-process.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-query wall-clock budget. A query past its budget is cancelled and reported \
             as $(b,timeout) (exit status 3); the remaining queries still run.")
  in
  let portfolio =
    Arg.(
      value & flag
      & info [ "portfolio" ]
          ~doc:
            "Race the solver-strategy portfolio (restart cadence, activity decay, branching \
             polarity variants) on each query, one process per strategy, and keep the first \
             decisive answer. Useful for one hard query; ignores $(b,--jobs).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format"; "f" ] ~doc:"Output format: text or json.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Certify every verdict independently: replay UNSAT proofs through the standalone \
             checker (theory lemmas re-justified) and validate counterexamples by model \
             evaluation plus concrete simulator replay. A verdict whose certificate fails \
             makes the exit status 4.")
  in
  let symmetry =
    Arg.(
      value & flag
      & info [ "symmetry" ]
          ~doc:
            "Verify the symmetry quotient instead of the full network: devices are \
             partitioned into interchangeability classes (color refinement over \
             renaming-invariant configuration fingerprints) and one representative per class \
             is encoded. Devices the property names ($(b,--dst-device), $(b,--source), \
             $(b,--devices), $(b,--allowed)) are pinned and stay concrete; a verdict for a \
             representative lifts to every member of its class. Falls back to the full \
             encoding when the network is asymmetric or uses features whose quotient \
             semantics would differ (iBGP, statics with internal next hops, \
             $(b,--failures)); ignored for $(b,--batch all-pairs), where every destination \
             must stay concrete.")
  in
  let run file property sources dst_device dst_prefix bound devices max_len failures
        max_failures naive slice no_lint allowed batch jobs timeout portfolio format certify
        symmetry =
    let net = load_network file in
    let opts = opts_of ~slice naive failures in
    let opts = if no_lint then { opts with MS.Options.preflight_lint = false } else opts in
    let opts = if certify then MS.Options.with_certify opts else opts in
    (* shared tail: render a report suite and exit with its code *)
    let finish t0 (reports : MS.Verify.Report.t list) =
      let total_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let code = MS.Verify.Report.exit_code reports in
      (match format with
       | `Json -> print_endline (MS.Verify.Report.list_to_json reports)
       | `Text ->
         let count p = List.length (List.filter p reports) in
         List.iter
           (fun (r : MS.Verify.Report.t) ->
             let display =
               match r.MS.Verify.Report.verdict with
               | MS.Verify.Report.Verified -> "verified"
               | MS.Verify.Report.Violated _ -> "VIOLATED"
               | MS.Verify.Report.Timeout -> "TIMEOUT"
               | MS.Verify.Report.Error _ -> "ERROR"
             in
             let meth_tag =
               match r.MS.Verify.Report.method_ with
               | Some m -> Printf.sprintf "  [%s]" (MS.Verify.Report.method_name m)
               | None -> ""
             in
             let tag =
               match r.MS.Verify.Report.strategy with
               | Some s when meth_tag = Printf.sprintf "  [%s]" s -> ""
               | Some s -> Printf.sprintf "  [%s]" s
               | None ->
                 if r.MS.Verify.Report.worker > 0 then
                   Printf.sprintf "  [w%d]" r.MS.Verify.Report.worker
                 else ""
             in
             let cert_tag =
               match r.MS.Verify.Report.certificate with
               | MS.Verify.Report.Uncertified -> ""
               | MS.Verify.Report.Checked_unsat_proof { clauses; lemmas; _ } ->
                 Printf.sprintf "  [proof: %d clauses, %d lemmas]" clauses lemmas
               | MS.Verify.Report.Checked_model -> "  [model replayed]"
               | MS.Verify.Report.Certification_failed _ -> "  [CERTIFICATION FAILED]"
             in
             Printf.printf "  %-36s %-9s %8.1f ms%s%s%s\n%!" r.MS.Verify.Report.label display
               r.MS.Verify.Report.wall_ms meth_tag tag cert_tag;
             (match r.MS.Verify.Report.certificate with
              | MS.Verify.Report.Certification_failed msg ->
                Printf.printf "    certification: %s\n" msg
              | _ -> ());
             match r.MS.Verify.Report.verdict with
             | MS.Verify.Report.Violated cx -> print_string (MS.Counterexample.to_string cx)
             | MS.Verify.Report.Error e -> Printf.printf "    error: %s\n" e
             | _ -> ())
           reports;
         let is v (r : MS.Verify.Report.t) =
           MS.Verify.Report.verdict_name r.MS.Verify.Report.verdict = v
         in
         Printf.printf "%d queries in %.1f ms (%d verified, %d violated, %d timeout, %d error)\n"
           (List.length reports) total_ms (count (is "verified")) (count (is "violated"))
           (count (is "timeout")) (count (is "error")));
      exit code
    in
    (* fault-invariance sweeps build their own two-copy encodings per k
       and race the graph fast path inside the portfolio, so they skip
       the shared-encoding pipeline below *)
    (match property with
     | `Fault ->
       if batch <> None then begin
         prerr_endline "--property fault-invariance cannot be combined with --batch";
         exit 2
       end;
       let all_devices =
         List.map (fun (d : Config.Ast.device) -> d.Config.Ast.dev_name)
           net.Config.Ast.net_devices
       in
       let sources = if sources = [] then all_devices else sources in
       let dest =
         match (dst_device, dst_prefix) with
         | Some d, Some p -> MS.Property.Subnet (d, Net.Prefix.of_string p)
         | Some d, None -> MS.Property.Device d
         | None, _ ->
           prerr_endline "missing --dst-device";
           exit 2
       in
       let ks =
         match max_failures with
         | Some kmax when kmax >= 1 -> List.init kmax (fun i -> i + 1)
         | Some _ ->
           prerr_endline "--max-failures must be at least 1";
           exit 2
         | None -> [ (match failures with Some k -> max k 0 | None -> 1) ]
       in
       let t0 = Unix.gettimeofday () in
       finish t0 (List.map (fun k -> Faults.hybrid ?timeout net opts ~k ~sources dest) ks)
     | _ -> ());
    let symmetry =
      if symmetry && (match batch with Some names -> List.mem "all-pairs" names | None -> false)
      then begin
        prerr_endline
          "note: --symmetry is ignored for --batch all-pairs (every destination must stay \
           concrete)";
        false
      end
      else symmetry
    in
    let opts = if symmetry then MS.Options.with_symmetry opts else opts in
    (* every device the property names must survive the quotient as
       itself, so pin the user-specified endpoints *)
    let pins =
      if not symmetry then []
      else (match dst_device with Some d -> [ d ] | None -> []) @ devices @ allowed @ sources
    in
    let enc =
      try MS.Encode.build ~pins net opts with
      | Analysis.Lint.Lint_errors errs ->
        prerr_endline "configuration has lint errors; not encoding:";
        prerr_string (Analysis.Diagnostic.render_text errs);
        exit 2
    in
    if symmetry then begin
      match MS.Encode.sym_classes enc with
      | [] ->
        prerr_endline
          "symmetry: no reduction possible (asymmetric network or unsupported features); \
           verifying the full encoding"
      | cs ->
        let collapsed =
          List.fold_left (fun acc (_, ms) -> acc + List.length ms - 1) 0 cs
        in
        Printf.eprintf "symmetry: %d device(s) collapsed into %d class representative(s)\n%!"
          collapsed (List.length cs)
    end;
    let all_devices = MS.Encode.devices enc in
    let sources = if sources = [] then all_devices else sources in
    let dest () =
      match (dst_device, dst_prefix) with
      | Some d, Some p -> MS.Property.Subnet (d, Net.Prefix.of_string p)
      | Some d, None -> MS.Property.Device d
      | None, _ ->
        prerr_endline "missing --dst-device";
        exit 2
    in
    let pair_or_exit () =
      match devices with
      | [ d1; d2 ] -> (d1, d2)
      | _ ->
        prerr_endline "--devices d1,d2 required";
        exit 2
    in
    (* A property name expands to one or more labelled queries over the
       shared encoding; [all-pairs] fans out per destination device. *)
    let queries_of = function
      | `Reachability ->
        [ ("reachability", fun enc -> MS.Property.reachability enc ~sources (dest ())) ]
      | `Isolation -> [ ("isolation", fun enc -> MS.Property.isolation enc ~sources (dest ())) ]
      | `Bounded ->
        [ ("bounded-length", fun enc -> MS.Property.bounded_length enc ~sources (dest ()) ~bound) ]
      | `Blackholes -> [ ("blackholes", fun enc -> MS.Property.no_blackholes enc ~allowed ()) ]
      | `Loops -> [ ("loops", fun enc -> MS.Property.no_loops enc ()) ]
      | `Multipath ->
        [ ("multipath-consistency", fun enc -> MS.Property.multipath_consistency enc (dest ())) ]
      | `Acl_equiv ->
        let d1, d2 = pair_or_exit () in
        [ ("acl-equivalence", fun enc -> MS.Property.acl_equivalence enc d1 d2) ]
      | `Local_equiv ->
        let d1, d2 = pair_or_exit () in
        [ ("local-equivalence", fun enc -> MS.Property.local_equivalence enc d1 d2) ]
      | `Leak -> [ ("no-leak", fun enc -> MS.Property.no_leak enc ~max_len) ]
      | `Fault ->
        (* handled by the early branch above; batch names reach here *)
        prerr_endline "fault-invariance cannot run over a shared batch encoding";
        exit 2
      | `All_pairs ->
        List.filter_map
          (fun d ->
            if MS.Encode.subnets enc d = [] then None
            else begin
              let srcs = List.filter (fun s -> s <> d) all_devices in
              Some
                ( "reachability *->" ^ d,
                  fun enc -> MS.Property.reachability enc ~sources:srcs (MS.Property.Device d) )
            end)
          all_devices
    in
    let parse name =
      match name with
      | "reachability" -> `Reachability
      | "isolation" -> `Isolation
      | "bounded-length" -> `Bounded
      | "blackholes" -> `Blackholes
      | "loops" -> `Loops
      | "multipath-consistency" -> `Multipath
      | "acl-equivalence" -> `Acl_equiv
      | "local-equivalence" -> `Local_equiv
      | "no-leak" -> `Leak
      | "fault-invariance" -> `Fault
      | "all-pairs" -> `All_pairs
      | other ->
        Printf.eprintf "unknown batch property %s\n" other;
        exit 2
    in
    let queries =
      let named =
        match batch with
        | None -> queries_of property
        | Some names -> List.concat_map (fun n -> queries_of (parse n)) names
      in
      List.map (fun (label, make) -> MS.Verify.Query.v label make) named
    in
    if queries = [] then begin
      prerr_endline "empty batch";
      exit 2
    end;
    let t0 = Unix.gettimeofday () in
    let reports =
      if portfolio then List.map (fun q -> Engine.portfolio ?timeout enc q) queries
      else Engine.run ~jobs ?timeout enc queries
    in
    finish t0 reports
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 — every property holds.";
      `P "1 — at least one property is violated (dominates timeouts and worker errors).";
      `P "2 — usage, parse, or lint error: nothing was verified.";
      `P "3 — a query timed out or a worker failed, and nothing was violated.";
      `P
        "4 — with $(b,--certify): a verdict's independent certificate failed (dominates every \
         other status; the verdict cannot be trusted in either direction).";
    ]
  in
  Cmd.v (Cmd.info "verify" ~man ~doc:"Verify a property of a configuration.")
    Term.(
      const run $ file_arg $ property $ sources $ dst_device $ dst_prefix $ bound $ devices
      $ max_len $ failures $ max_failures $ naive $ slice $ no_lint $ allowed $ batch $ jobs
      $ timeout $ portfolio $ format $ certify $ symmetry)

(* ---- lint ---- *)

let lint_cmd =
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ]) `Text
      & info [ "format"; "f" ] ~doc:"Output format: text, json, or sarif (SARIF 2.1.0).")
  in
  let run file format =
    let net = load_network file in
    let diags = Analysis.Lint.run net in
    (match format with
     | `Text -> print_string (Analysis.Diagnostic.render_text diags)
     | `Json -> print_string (Analysis.Diagnostic.render_json diags)
     | `Sarif -> print_string (Analysis.Diagnostic.render_sarif ~uri:file diags));
    exit (Analysis.Lint.exit_code diags)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a configuration: undefined/unused references, dead and shadowed \
          policy clauses, cross-device inconsistencies. Exit status is 0 when clean, 1 with \
          warnings, 2 with errors.")
    Term.(const run $ file_arg $ format)

(* ---- simulate ---- *)

let simulate_cmd =
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc:"Trace SRC:DSTIP through the network.")
  in
  let ribs = Arg.(value & flag & info [ "ribs" ] ~doc:"Print every device's routes.") in
  let run file trace ribs =
    let net = load_network file in
    let state = Routing.Simulator.run net Routing.Simulator.empty_env in
    if not (Routing.Simulator.converged state) then
      prerr_endline "warning: simulation did not converge";
    if ribs then
      List.iter
        (fun (d : A.device) ->
          Printf.printf "%s:\n" d.A.dev_name;
          List.iter
            (fun r -> Format.printf "  %a@." Routing.Route.pp r)
            (Routing.Simulator.overall_rib state d.A.dev_name))
        net.A.net_devices;
    match trace with
    | None -> ()
    | Some spec ->
      (match String.split_on_char ':' spec with
       | [ src; dst ] ->
         let t = Routing.Dataplane.trace net state ~src ~dst:(Net.Ipv4.of_string dst) in
         Format.printf "%a@." Routing.Dataplane.pp_trace t
       | _ ->
         prerr_endline "--trace expects SRC:DSTIP";
         exit 2)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the concrete control-plane simulator.")
    Term.(const run $ file_arg $ trace $ ribs)

(* ---- gen ---- *)

let gen_cmd =
  let kind =
    Arg.(
      required
      & pos 0 (some (enum [ ("fattree", `Fattree); ("enterprise", `Enterprise) ])) None
      & info [] ~docv:"KIND" ~doc:"fattree or enterprise.")
  in
  let pods = Arg.(value & opt int 4 & info [ "pods" ] ~doc:"Fat-tree pods (even).") in
  let routers = Arg.(value & opt int 8 & info [ "routers" ] ~doc:"Enterprise router count.") in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Generator seed.") in
  let hijack = Arg.(value & flag & info [ "hijack" ] ~doc:"Inject the management-hijack bug.") in
  let acl_gap = Arg.(value & flag & info [ "acl-gap" ] ~doc:"Inject the ACL-inconsistency bug.") in
  let deep = Arg.(value & flag & info [ "deep-drop" ] ~doc:"Inject the deep blackhole bug.") in
  let single_homed =
    Arg.(value & flag & info [ "single-homed" ] ~doc:"Inject the single-homed-rack bug.")
  in
  let run kind pods routers seed hijack acl_gap deep single_homed =
    let net =
      match kind with
      | `Fattree -> (Generators.Fattree.make ~pods).Generators.Fattree.network
      | `Enterprise ->
        (Generators.Enterprise.make ~seed ~routers
           ~inject:{ Generators.Enterprise.hijack; acl_gap; deep_drop = deep; single_homed }
           ())
          .Generators.Enterprise.network
    in
    print_string (Config.Printer.network_to_string net)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic network configuration.")
    Term.(const run $ kind $ pods $ routers $ seed $ hijack $ acl_gap $ deep $ single_homed)

(* ---- serve ---- *)

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket to listen on (an existing file is replaced).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Cap on the per-request worker-process fan-out; query requests asking for more are \
             clamped. 1 (the default) answers everything in-process on the persistent \
             incremental session.")
  in
  let failures =
    Arg.(value & opt (some int) None & info [ "failures"; "k" ] ~doc:"Verify under up to $(docv) link failures.")
  in
  let naive = Arg.(value & flag & info [ "naive" ] ~doc:"Disable the optimizations of \xc2\xa76.") in
  let no_lint =
    Arg.(value & flag & info [ "no-lint" ] ~doc:"Skip the pre-flight lint when encoding.")
  in
  let run socket jobs failures naive no_lint =
    let opts = opts_of naive failures in
    let opts = if no_lint then { opts with MS.Options.preflight_lint = false } else opts in
    Serve.run (Serve.create ~jobs opts) ~socket
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Run the verification daemon: a long-lived process speaking line-delimited JSON \
         (schema 2) over a Unix-domain socket. Each request line is one object with an \
         $(b,op) field — $(b,load) and $(b,diff) carry a $(b,config) string, $(b,query) \
         carries a $(b,queries) array of property specs (the $(b,verify) vocabulary) and an \
         optional $(b,jobs), and $(b,stats)/$(b,shutdown) take no arguments. Each response \
         is one JSON line.";
      `P
        "The daemon caches encodings by concrete configuration digest and verdicts by query \
         spec; a $(b,diff) whose change is disjoint from a cached verdict's support set \
         replays that verdict without solving (reports carry $(b,replayed):true).";
      `S Manpage.s_exit_status;
      `P "0 — clean shutdown (a $(b,shutdown) request).";
      `P "2 — usage error or the socket could not be bound.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~man ~doc:"Run the verification daemon on a Unix-domain socket.")
    Term.(const run $ socket $ jobs $ failures $ naive $ no_lint)

(* ---- parse ---- *)

let parse_cmd =
  let run file =
    let net = load_network file in
    Printf.printf "devices: %d, links: %d, config lines: %d\n"
      (List.length net.A.net_devices)
      (Net.Topology.num_links net.A.net_topology)
      (Config.Printer.network_config_lines net)
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and summarize a configuration.") Term.(const run $ file_arg)

let () =
  let doc = "Network configuration verification (Minesweeper reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "minesweeper" ~doc)
          [ verify_cmd; lint_cmd; simulate_cmd; gen_cmd; parse_cmd; serve_cmd ]))
