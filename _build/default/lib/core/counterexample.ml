(** Decoding of satisfying assignments into human-readable
    counterexamples: the concrete packet, the environment (external
    announcements and failed links) and the resulting stable forwarding
    state. *)

module T = Smt.Term
module Model = Smt.Model

type announcement = {
  cx_at : string;  (** receiving device *)
  cx_peer : string;
  cx_plen : int;
  cx_metric : int;
  cx_med : int;
  cx_comms : Net.Community.t list;
}

type t = {
  dst_ip : Net.Ipv4.t;
  src_ip : Net.Ipv4.t;
  dst_port : int;
  announcements : announcement list;
  failures : (string * string) list;
  forwarding : (string * Nexthop.t) list;  (** active data-plane edges *)
}

let eval_int model term =
  match Model.eval model term with
  | Model.Int n -> n
  | Model.Bv v -> v
  | Model.Bool _ | Model.Rat _ -> 0

let eval_bool model term = Model.eval_bool model term

let decode (enc : Encode.t) (model : Model.t) : t =
  let pkt = Encode.packet enc in
  let announcements =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun (p, _) ->
            let r = Encode.env_record enc d p in
            if eval_bool model r.Sym_record.valid then
              Some
                {
                  cx_at = d;
                  cx_peer = p;
                  cx_plen = eval_int model r.Sym_record.plen;
                  cx_metric = eval_int model r.Sym_record.metric;
                  cx_med = eval_int model r.Sym_record.med;
                  cx_comms =
                    List.filter_map
                      (fun (c, t) -> if eval_bool model t then Some c else None)
                      r.Sym_record.comms;
                }
            else None)
          (Encode.external_peers enc d))
      (Encode.devices enc)
  in
  let failures =
    List.filter_map
      (fun (pair, v) -> if eval_bool model v then Some pair else None)
      (Encode.failed_links enc)
  in
  let forwarding =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun h -> if eval_bool model (Encode.datafwd enc d h) then Some (d, h) else None)
          (Encode.hops enc d))
      (Encode.devices enc)
  in
  {
    dst_ip = eval_int model pkt.Packet.dst_ip;
    src_ip = eval_int model pkt.Packet.src_ip;
    dst_port = eval_int model pkt.Packet.dst_port;
    announcements;
    failures;
    forwarding;
  }

let pp fmt t =
  let open Format in
  fprintf fmt "packet: dst=%s src=%s port=%d@." (Net.Ipv4.to_string t.dst_ip)
    (Net.Ipv4.to_string t.src_ip) t.dst_port;
  if t.announcements = [] then fprintf fmt "environment: no external announcements@."
  else
    List.iter
      (fun a ->
        fprintf fmt "announcement at %s from %s: /%d pathlen=%d med=%d%s@." a.cx_at a.cx_peer
          a.cx_plen a.cx_metric a.cx_med
          (match a.cx_comms with
           | [] -> ""
           | cs -> " comms=" ^ String.concat "," (List.map Net.Community.to_string cs)))
      t.announcements;
  List.iter (fun (a, b) -> fprintf fmt "failed link: %s -- %s@." a b) t.failures;
  List.iter
    (fun (d, h) -> fprintf fmt "fwd: %s -> %s@." d (Nexthop.to_string h))
    t.forwarding

let to_string t = Format.asprintf "%a" pp t
