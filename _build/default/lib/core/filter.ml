(** Translation of routing policy (prefix lists, route maps) and
    data-plane ACLs into SMT constraints over symbolic records and the
    symbolic packet (§3 steps 4, 6, 7; Figure 4).

    Under prefix hoisting (§6.1), a prefix-list test on a record becomes
    an interval test on the packet's destination IP plus bounds on the
    record's length attribute; in the naive encoding it tests the
    record's explicit bit-vector prefix. *)

module T = Smt.Term
module A = Config.Ast

(* One prefix-list entry's match condition. *)
let entry_match (pkt : Packet.t) (r : Sym_record.t) (e : A.prefix_list_entry) =
  let base = Net.Prefix.length e.pl_prefix in
  let ge, le =
    match (e.pl_ge, e.pl_le) with
    | None, None -> (base, base)
    | Some g, None -> (g, 32)
    | None, Some l -> (base, l)
    | Some g, Some l -> (g, l)
  in
  let len_in_range =
    T.and_ [ T.geq r.plen (T.int_const ge); T.leq r.plen (T.int_const le) ]
  in
  let bits_match =
    match r.prefix with
    | None ->
      (* Hoisted: since the record is valid for the packet and its length
         is at least [base], the first [base] bits of the (eliminated)
         prefix agree with the destination IP — test the IP directly. *)
      Packet.dst_in_prefix pkt e.pl_prefix
    | Some prefix ->
      let mask = T.bv_const ~width:32 (Packet.mask_of_len base) in
      T.bv_eq (T.bv_and prefix mask) (T.bv_const ~width:32 (Net.Prefix.network e.pl_prefix))
  in
  T.and_ [ len_in_range; bits_match ]

(** First-match semantics of a prefix list; exhaustion denies. *)
let prefix_list_permits pkt r (pl : A.prefix_list) =
  let rec chain = function
    | [] -> T.fls
    | (e : A.prefix_list_entry) :: rest ->
      let m = entry_match pkt r e in
      let here = T.bool_const (e.pl_action = A.Permit) in
      T.or_ [ T.and_ [ m; here ]; T.and_ [ T.not_ m; chain rest ] ]
  in
  chain pl.pl_entries

let match_cond (dev : A.device) pkt (r : Sym_record.t) = function
  | A.Match_prefix_list name ->
    (match A.find_prefix_list dev name with
     | Some pl -> prefix_list_permits pkt r pl
     | None -> T.fls)
  | A.Match_community c -> Sym_record.comm_term r c

(** The attribute overrides a clause's set actions impose. *)
let set_overrides sets =
  List.fold_left
    (fun acc set ->
      match set with
      | A.Set_local_pref n -> (`Lp, T.int_const n) :: List.remove_assoc `Lp acc
      | A.Set_metric n -> (`Metric, T.int_const n) :: List.remove_assoc `Metric acc
      | A.Set_med n -> (`Med, T.int_const n) :: List.remove_assoc `Med acc
      | A.Set_community c -> (`Comm c, T.tru) :: List.remove_assoc (`Comm c) acc
      | A.Delete_community c -> (`Comm c, T.fls) :: List.remove_assoc (`Comm c) acc)
    [] sets

(** Encode a route map applied between [src] (the record arriving at
    the policy) and [dst] (a fresh record for the result), guarded by
    [pass] (link up, export rules, ...).  Returns the constraints.

    Semantics: the first clause whose matches all hold decides; permit
    copies [src] into [dst] applying the clause's sets; deny (or no
    matching clause) invalidates [dst]. *)
let route_map_constraints (dev : A.device) pkt ~(rm : A.route_map option) ~pass
    ~(src : Sym_record.t) ~(dst : Sym_record.t) =
  match rm with
  | None ->
    (* No policy: dst mirrors src when the guard passes. *)
    [
      T.iff dst.valid (T.and_ [ src.valid; pass ]);
      T.implies dst.valid (Sym_record.copy_constraints ~src ~dst ());
    ]
  | Some rm ->
    let clause_conds =
      List.map
        (fun (cl : A.rm_clause) ->
          (cl, T.and_ (List.map (match_cond dev pkt src) cl.rm_matches)))
        rm.rm_clauses
    in
    (* selected(cl) = its condition holds and no earlier clause matched *)
    let rec selectors prior = function
      | [] -> []
      | (cl, cond) :: rest ->
        let sel = T.and_ (cond :: List.map T.not_ prior) in
        (cl, sel) :: selectors (cond :: prior) rest
    in
    let selected = selectors [] clause_conds in
    let permitted =
      T.or_
        (List.filter_map
           (fun ((cl : A.rm_clause), sel) -> if cl.rm_action = A.Permit then Some sel else None)
           selected)
    in
    let validity = T.iff dst.valid (T.and_ [ src.valid; pass; permitted ]) in
    let per_clause =
      List.filter_map
        (fun ((cl : A.rm_clause), sel) ->
          if cl.rm_action = A.Deny then None
          else begin
            let overrides = set_overrides cl.rm_sets in
            Some
              (T.implies
                 (T.and_ [ dst.valid; sel ])
                 (Sym_record.copy_constraints ~overrides ~src ~dst ()))
          end)
        selected
    in
    validity :: per_clause

(** Data-plane ACL as a predicate on the packet's destination;
    first-match semantics, default deny. *)
let acl_permits pkt (acl : A.acl) =
  let rec chain = function
    | [] -> T.fls
    | (e : A.acl_entry) :: rest ->
      let m = Packet.dst_in_prefix pkt e.acl_dst in
      T.or_
        [ T.and_ [ m; T.bool_const (e.acl_action = A.Permit) ]; T.and_ [ T.not_ m; chain rest ] ]
  in
  chain acl.acl_entries

(** Combined ACL test for traffic leaving [dev] on [out_iface] and
    entering [peer_dev] on [in_iface]; [tru] when no ACLs apply. *)
let link_acl_permits pkt ~(dev : A.device) ~out_iface ~(peer : A.device option) ~in_iface =
  let side (d : A.device option) iface_name dir =
    match d with
    | None -> T.tru
    | Some d ->
      (match Option.bind iface_name (A.find_interface d) with
       | None -> T.tru
       | Some i ->
         let acl_name = match dir with `In -> i.A.if_acl_in | `Out -> i.A.if_acl_out in
         (match Option.bind acl_name (A.find_acl d) with
          | None -> T.tru
          | Some acl -> acl_permits pkt acl))
  in
  T.and_ [ side (Some dev) out_iface `Out; side peer in_iface `In ]
