(** Symbolic control-plane records (§3, Figure 3).

    A record is a bundle of terms, one per attribute.  [fresh] allocates
    SMT variables (used when an import/export policy can modify fields);
    derived records are built directly from terms and cost no variables
    (the merge optimizations of §6.2 rely on this).

    Slicing ({!Features.t}) replaces attributes that can never vary in
    the given network with shared constants. *)

module T = Smt.Term

type t = {
  name : string;
  valid : T.t;  (** Bool *)
  plen : T.t;  (** Int: prefix length in [0, 32] *)
  prefix : T.t option;  (** Bitvec 32; present only in the naive encoding *)
  ad : T.t;  (** Int: administrative distance (constant per context) *)
  lp : T.t;  (** Int: BGP local preference *)
  metric : T.t;  (** Int: IGP cost or AS-path length *)
  med : T.t;
  rid : T.t;  (** Int: advertising-router id (constant per edge) *)
  bgp_internal : T.t;  (** Bool *)
  comms : (Net.Community.t * T.t) list;  (** Bool per in-scope community *)
}

let default_lp = 100

let int_var name = T.var name Smt.Sort.Int
let bool_var name = T.var name Smt.Sort.Bool

(** A record whose variable attributes are fresh SMT variables named
    ["<name>.<field>"].  [ad], [rid] and [bgp_internal] are constants of
    the edge context and supplied by the caller. *)
let fresh (opts : Options.t) (feats : Features.t) ~name ~ad ~rid ~bgp_internal =
  {
    name;
    valid = bool_var (name ^ ".valid");
    plen = int_var (name ^ ".plen");
    prefix = (if opts.hoist_prefixes then None else Some (T.bv_var (name ^ ".prefix") ~width:32));
    ad = T.int_const ad;
    lp = (if feats.Features.any_lp then int_var (name ^ ".lp") else T.int_const default_lp);
    metric = int_var (name ^ ".metric");
    med = (if feats.Features.any_med then int_var (name ^ ".med") else T.int_const 0);
    rid = T.int_const rid;
    bgp_internal = T.bool_const bgp_internal;
    comms = List.map (fun c -> (c, bool_var (name ^ ".comm." ^ Net.Community.to_string c))) feats.comm_scope;
  }

(** A record for selection results ([best...]): every attribute
    (including [ad] and [bgp_internal]) is variable because it copies
    whichever candidate wins. *)
let fresh_best (opts : Options.t) (feats : Features.t) ~name =
  {
    name;
    valid = bool_var (name ^ ".valid");
    plen = int_var (name ^ ".plen");
    prefix = (if opts.hoist_prefixes then None else Some (T.bv_var (name ^ ".prefix") ~width:32));
    ad = int_var (name ^ ".ad");
    lp = (if feats.Features.any_lp then int_var (name ^ ".lp") else T.int_const default_lp);
    metric = int_var (name ^ ".metric");
    med = (if feats.Features.any_med then int_var (name ^ ".med") else T.int_const 0);
    rid = int_var (name ^ ".rid");
    bgp_internal =
      (if feats.Features.any_ibgp then bool_var (name ^ ".bgpInternal") else T.bool_const false);
    comms = List.map (fun c -> (c, bool_var (name ^ ".comm." ^ Net.Community.to_string c))) feats.comm_scope;
  }

(** An always-invalid record (used for empty candidate sets). *)
let invalid ~name =
  {
    name;
    valid = T.fls;
    plen = T.int_const 0;
    prefix = None;
    ad = T.int_const 255;
    lp = T.int_const default_lp;
    metric = T.int_const 0;
    med = T.int_const 0;
    rid = T.int_const 0;
    bgp_internal = T.fls;
    comms = [];
  }

let comm_term r c =
  match List.find_opt (fun (c', _) -> Net.Community.equal c c') r.comms with
  | Some (_, t) -> t
  | None -> T.fls

(** Attribute-wise equality over decision-relevant fields (used for
    "best = candidate" and behavioural-equivalence checks).  Community
    bits participate only when [comms] is true. *)
let equal_fields ?(comms = true) a b =
  let comm_eqs =
    if comms then
      List.map (fun (c, t) -> T.iff t (comm_term b c)) a.comms
    else []
  in
  let prefix_eq =
    match (a.prefix, b.prefix) with
    | Some pa, Some pb -> [ T.bv_eq pa pb ]
    | None, None -> []
    | Some _, None | None, Some _ -> []
  in
  T.and_
    ([
       T.eq a.plen b.plen;
       T.eq a.ad b.ad;
       T.eq a.lp b.lp;
       T.eq a.metric b.metric;
       T.eq a.med b.med;
       T.eq a.rid b.rid;
       T.iff a.bgp_internal b.bgp_internal;
     ]
    @ prefix_eq @ comm_eqs)

(** Constraints pinning [dst]'s attributes to [src]'s (a conditional
    copy: asserted under some guard by the caller). *)
let copy_constraints ?(overrides = []) ~src ~dst () =
  let field_term field default = match List.assoc_opt field overrides with Some t -> t | None -> default in
  let base =
    [
      T.eq dst.plen (field_term `Plen src.plen);
      T.eq dst.lp (field_term `Lp src.lp);
      T.eq dst.metric (field_term `Metric src.metric);
      T.eq dst.med (field_term `Med src.med);
    ]
  in
  let prefix_eq =
    match (dst.prefix, src.prefix) with
    | Some pd, Some ps -> [ T.bv_eq pd ps ]
    | None, None -> []
    | Some _, None | None, Some _ -> []
  in
  let comm_eqs =
    List.map
      (fun (c, t) ->
        match List.assoc_opt (`Comm c) overrides with
        | Some o -> T.iff t o
        | None -> T.iff t (comm_term src c))
      dst.comms
  in
  T.and_ (base @ prefix_eq @ comm_eqs)

(** Validity side conditions: length bounds and, in the naive encoding,
    the FBM constraint tying the record's explicit prefix to the packet
    destination (a 33-way case split on the symbolic length — exactly
    the cost prefix hoisting eliminates). *)
let well_formed (pkt : Packet.t) r =
  let bounds = T.and_ [ T.geq r.plen (T.int_const 0); T.leq r.plen (T.int_const 32) ] in
  match r.prefix with
  | None -> T.implies r.valid bounds
  | Some prefix ->
    let fbm =
      T.or_
        (List.init 33 (fun len ->
             let mask = T.bv_const ~width:32 (Packet.mask_of_len len) in
             T.and_
               [
                 T.eq r.plen (T.int_const len);
                 T.bv_eq (T.bv_and prefix mask) (T.bv_and pkt.Packet.dst_ip mask);
               ]))
    in
    T.implies r.valid (T.and_ [ bounds; fbm ])
