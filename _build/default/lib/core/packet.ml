(** The single symbolic packet (§3).  Under prefix hoisting the
    destination is an integer and prefix tests become interval tests in
    difference logic; in the naive baseline it is a 32-bit bit-vector
    and prefix tests are bit-blasted mask comparisons. *)

module T = Smt.Term

type t = {
  naive : bool;
  dst_ip : T.t;  (** Int (hoisted) or Bitvec 32 (naive) *)
  src_ip : T.t;
  dst_port : T.t;
  src_port : T.t;
  protocol : T.t;
}

let ip_space = 1 lsl 32

let create (opts : Options.t) ~suffix =
  let naive = not opts.hoist_prefixes in
  let name field = Printf.sprintf "pkt%s.%s" suffix field in
  let dst_ip =
    if naive then T.bv_var (name "dstIp") ~width:32 else T.var (name "dstIp") Smt.Sort.Int
  in
  {
    naive;
    dst_ip;
    src_ip = T.var (name "srcIp") Smt.Sort.Int;
    dst_port = T.var (name "dstPort") Smt.Sort.Int;
    src_port = T.var (name "srcPort") Smt.Sort.Int;
    protocol = T.var (name "proto") Smt.Sort.Int;
  }

(** Range constraints for all header fields. *)
let well_formed p =
  let bounded t lo hi = T.and_ [ T.geq t (T.int_const lo); T.leq t (T.int_const hi) ] in
  T.and_
    [
      (if p.naive then T.tru else bounded p.dst_ip 0 (ip_space - 1));
      bounded p.src_ip 0 (ip_space - 1);
      bounded p.dst_port 0 65535;
      bounded p.src_port 0 65535;
      bounded p.protocol 0 255;
    ]

let mask_of_len len = if len = 0 then 0 else ((1 lsl len) - 1) lsl (32 - len)

(** [dst_in_prefix p pfx] holds when the packet's destination lies in
    [pfx] — an interval test (hoisted) or a masked equality (naive). *)
let dst_in_prefix p (pfx : Net.Prefix.t) =
  if p.naive then begin
    let len = Net.Prefix.length pfx in
    T.bv_eq
      (T.bv_and p.dst_ip (T.bv_const ~width:32 (mask_of_len len)))
      (T.bv_const ~width:32 (Net.Prefix.network pfx))
  end
  else
    T.and_
      [
        T.geq p.dst_ip (T.int_const (Net.Prefix.first pfx));
        T.leq p.dst_ip (T.int_const (Net.Prefix.last pfx));
      ]

let dst_eq p ip =
  if p.naive then T.bv_eq p.dst_ip (T.bv_const ~width:32 ip)
  else T.eq p.dst_ip (T.int_const ip)
