lib/core/verify.ml: Counterexample Encode List Options Packet Property Smt Sym_record
