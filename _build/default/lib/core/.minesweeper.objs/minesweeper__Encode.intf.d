lib/core/encode.mli: Config Net Nexthop Options Packet Smt Sym_record
