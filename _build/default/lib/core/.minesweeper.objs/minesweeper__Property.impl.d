lib/core/property.ml: Config Encode Exactnum Filter Hashtbl List Net Nexthop Option Packet Printf Smt Sym_record
