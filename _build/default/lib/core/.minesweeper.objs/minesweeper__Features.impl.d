lib/core/features.ml: Config List Net
