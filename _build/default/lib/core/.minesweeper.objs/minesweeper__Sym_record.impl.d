lib/core/sym_record.ml: Features List Net Options Packet Smt
