lib/core/nexthop.ml: Format Stdlib
