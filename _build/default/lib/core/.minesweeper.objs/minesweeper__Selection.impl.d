lib/core/selection.ml: List Smt Sym_record
