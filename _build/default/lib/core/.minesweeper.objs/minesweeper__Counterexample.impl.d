lib/core/counterexample.ml: Encode Format List Net Nexthop Packet Smt String Sym_record
