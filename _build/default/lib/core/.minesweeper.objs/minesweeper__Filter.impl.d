lib/core/filter.ml: Config List Net Option Packet Smt Sym_record
