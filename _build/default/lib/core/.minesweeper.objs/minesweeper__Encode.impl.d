lib/core/encode.ml: Config Features Filter Hashtbl List Net Nexthop Option Options Packet Printf Selection Smt Sym_record
