lib/core/options.ml:
