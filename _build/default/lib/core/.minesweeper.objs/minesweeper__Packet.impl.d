lib/core/packet.ml: Net Options Printf Smt
