lib/core/property.mli: Encode Exactnum Net Smt
