lib/core/verify.mli: Config Counterexample Encode Options Property Smt
