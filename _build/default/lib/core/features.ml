(** Static scan of a network's configurations driving the slicing
    optimizations (§6.2): attributes that no configuration can ever set
    or test are replaced by shared constants in every record. *)

module A = Config.Ast

type t = {
  any_lp : bool;  (** some route-map sets local-preference *)
  any_med : bool;  (** some route-map sets or matches MED *)
  any_ibgp : bool;
  comm_scope : Net.Community.t list;  (** communities carried by records *)
  multipath_everywhere : bool;
}

let route_map_sets (net : A.network) f =
  List.exists
    (fun (d : A.device) ->
      List.exists
        (fun (rm : A.route_map) ->
          List.exists (fun (cl : A.rm_clause) -> List.exists f cl.rm_sets) rm.rm_clauses)
        d.dev_route_maps)
    net.net_devices

let mentioned_communities (net : A.network) ~matched_only =
  let add acc c = if List.exists (Net.Community.equal c) acc then acc else c :: acc in
  List.fold_left
    (fun acc (d : A.device) ->
      List.fold_left
        (fun acc (rm : A.route_map) ->
          List.fold_left
            (fun acc (cl : A.rm_clause) ->
              let acc =
                List.fold_left
                  (fun acc -> function A.Match_community c -> add acc c | A.Match_prefix_list _ -> acc)
                  acc cl.rm_matches
              in
              if matched_only then acc
              else
                List.fold_left
                  (fun acc -> function
                    | A.Set_community c | A.Delete_community c -> add acc c
                    | A.Set_local_pref _ | A.Set_metric _ | A.Set_med _ -> acc)
                  acc cl.rm_sets)
            acc rm.rm_clauses)
        acc d.dev_route_maps)
    [] net.net_devices
  |> List.sort Net.Community.compare

let has_ibgp (net : A.network) =
  List.exists
    (fun (d : A.device) ->
      match d.A.dev_bgp with
      | None -> false
      | Some bgp ->
        List.exists
          (fun (n : A.bgp_neighbor) ->
            match A.device_of_ip net n.A.nbr_ip with
            | Some d2 when d2.A.dev_name <> d.A.dev_name ->
              (match d2.A.dev_bgp with
               | Some b2 -> b2.A.bgp_asn = bgp.A.bgp_asn
               | None -> false)
            | Some _ | None -> false)
          bgp.A.bgp_neighbors)
    net.net_devices

let scan (net : A.network) ~slice =
  if slice then
    {
      any_lp = route_map_sets net (function A.Set_local_pref _ -> true | _ -> false);
      any_med = route_map_sets net (function A.Set_med _ -> true | _ -> false);
      any_ibgp = has_ibgp net;
      comm_scope = mentioned_communities net ~matched_only:true;
      multipath_everywhere =
        List.for_all
          (fun (d : A.device) ->
            match d.A.dev_bgp with Some b -> b.A.bgp_multipath | None -> true)
          net.net_devices;
    }
  else
    {
      any_lp = true;
      any_med = true;
      any_ibgp = true;
      comm_scope = mentioned_communities net ~matched_only:false;
      multipath_everywhere = false;
    }
