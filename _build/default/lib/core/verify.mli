(** Top-level verification entry points.

    [check enc prop] asserts the network semantics, the property's
    instrumentation and assumptions, and the negation of its goal.
    UNSAT ⇒ the property [Holds] in every stable state, for every packet
    and environment; SAT ⇒ a [Violation] with a decoded counterexample. *)

type outcome = Holds | Violation of Counterexample.t

val check : Encode.t -> Property.t -> outcome

val check_with_stats : Encode.t -> Property.t -> outcome * Smt.Solver.stats

val verify : Config.Ast.network -> Options.t -> (Encode.t -> Property.t) -> outcome
(** Convenience: build the encoding and check one property. *)

val equivalent : Config.Ast.network -> Config.Ast.network -> Options.t -> outcome
(** Full equivalence (§5): under pointwise-equal environments and the
    same packet, both networks make identical forwarding decisions and
    external exports.  Devices and peerings are matched by name. *)

val fault_invariant :
  Config.Ast.network -> Options.t -> k:int -> sources:string list -> Property.destination -> outcome
(** Fault-invariance testing (§5): reachability of the destination from
    each source is identical between a failure-free copy and a copy
    with up to [k] failures. *)
