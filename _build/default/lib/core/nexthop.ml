(** Forwarding targets of a device in the symbolic model. *)

type t =
  | To_device of string  (** internal neighbor *)
  | To_external of string  (** external BGP peer, by canonical name *)
  | To_deliver  (** a locally attached destination subnet *)
  | To_drop  (** explicit discard (null route, suppressed aggregate) *)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let to_string = function
  | To_device d -> "dev:" ^ d
  | To_external p -> "ext:" ^ p
  | To_deliver -> "deliver"
  | To_drop -> "drop"

let pp fmt t = Format.pp_print_string fmt (to_string t)
