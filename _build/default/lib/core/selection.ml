(** Route selection (§3 step 5): symbolic encoding of the decision
    process.  [constrain_best] produces the standard Minesweeper
    constraints: the best record is valid iff some candidate is, is at
    least as preferred as every valid candidate, and equals one of
    them. *)

module T = Smt.Term

(* Lexicographic "at least as preferred": each step is (better, equal). *)
let lex steps =
  let rec go = function
    | [] -> T.tru
    | (better, equal) :: rest -> T.or_ [ better; T.and_ [ equal; go rest ] ]
  in
  go steps

(* Longest prefix first: a longer matching prefix always wins.  This
   reflects the per-packet slice of longest-prefix-match forwarding. *)
let plen_step (a : Sym_record.t) (b : Sym_record.t) = (T.gt a.plen b.plen, T.eq a.plen b.plen)

(** [a] at least as preferred as [b] within a BGP process: local
    preference (higher), AS-path length (lower), MED (lower), eBGP over
    iBGP, router id (lower; skipped under multipath). *)
let bgp_geq ~multipath (a : Sym_record.t) (b : Sym_record.t) =
  let steps =
    [
      plen_step a b;
      (T.gt a.lp b.lp, T.eq a.lp b.lp);
      (T.lt a.metric b.metric, T.eq a.metric b.metric);
      (T.lt a.med b.med, T.eq a.med b.med);
      ( T.and_ [ T.not_ a.bgp_internal; b.bgp_internal ],
        T.iff a.bgp_internal b.bgp_internal );
    ]
    @ if multipath then [] else [ (T.lt a.rid b.rid, T.eq a.rid b.rid) ]
  in
  lex steps

(** IGP preference: longest prefix, then lowest metric. *)
let igp_geq (a : Sym_record.t) (b : Sym_record.t) =
  lex [ plen_step a b; (T.lt a.metric b.metric, T.eq a.metric b.metric) ]

(** Overall (cross-protocol) preference: longest prefix, then lowest
    administrative distance.  Remaining fields only break ties between
    same-protocol candidates, which per-protocol selection already
    ordered. *)
let overall_geq (a : Sym_record.t) (b : Sym_record.t) =
  lex [ plen_step a b; (T.lt a.ad b.ad, T.eq a.ad b.ad) ]

(** Constraints defining [best] as the selection among [candidates].
    [geq a b] must hold when record [a] is at least as preferred as
    [b]. *)
let constrain_best ~geq ~(best : Sym_record.t) ~(candidates : Sym_record.t list) =
  let any_valid = T.or_ (List.map (fun (c : Sym_record.t) -> c.valid) candidates) in
  let dominates =
    List.map
      (fun (c : Sym_record.t) -> T.implies c.valid (geq best c))
      candidates
  in
  let equals_one =
    T.or_
      (List.map
         (fun (c : Sym_record.t) -> T.and_ [ c.valid; Sym_record.equal_fields best c ])
         candidates)
  in
  [ T.iff best.valid any_valid; T.implies best.valid (T.and_ dominates); T.implies best.valid equals_one ]
