module A = Config.Ast
module P = Net.Prefix
module Ip = Net.Ipv4

type t = {
  network : A.network;
  pods : int;
  tors : string list;
  aggregations : string list;
  cores : string list;
  tor_subnet : string -> P.t;
  core_peer : string -> string;
}

let num_routers ~pods = (pods * pods) + (pods * pods / 4)
(* k pods * (k/2 tor + k/2 agg) + (k/2)^2 cores = k^2 + k^2/4 *)

(* Mutable device builders keyed by name. *)
type dev_b = {
  mutable ifaces : A.interface list;
  mutable neighbors : A.bgp_neighbor list;
  mutable networks : P.t list;
  mutable plists : A.prefix_list list;
  mutable rmaps : A.route_map list;
  asn : int;
}

let make ~pods =
  if pods < 2 || pods mod 2 <> 0 then invalid_arg "Fattree.make: pods must be even and >= 2";
  let half = pods / 2 in
  let devices : (string, dev_b) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let next_asn = ref 64512 in
  let declare name =
    if not (Hashtbl.mem devices name) then begin
      let b = { ifaces = []; neighbors = []; networks = []; plists = []; rmaps = []; asn = !next_asn } in
      incr next_asn;
      Hashtbl.replace devices name b;
      order := name :: !order
    end
  in
  let tor p i = Printf.sprintf "tor_%d_%d" p i in
  let agg p j = Printf.sprintf "agg_%d_%d" p j in
  let core c = Printf.sprintf "core_%d" c in
  for p = 0 to pods - 1 do
    for i = 0 to half - 1 do
      declare (tor p i);
      declare (agg p i)
    done
  done;
  for c = 0 to (half * half) - 1 do
    declare (core c)
  done;
  let iface_count = Hashtbl.create 64 in
  let next_iface name =
    let n = match Hashtbl.find_opt iface_count name with Some n -> n | None -> 0 in
    Hashtbl.replace iface_count name (n + 1);
    Printf.sprintf "e%d" n
  in
  let add_iface name prefix ip =
    let b = Hashtbl.find devices name in
    let ifname = next_iface name in
    b.ifaces <-
      b.ifaces
      @ [
          {
            A.if_name = ifname;
            if_prefix = Some prefix;
            if_ip = Some ip;
            if_acl_in = None;
            if_acl_out = None;
            if_cost = 1;
          };
        ];
    ifname
  in
  let link_counter = ref 0 in
  let links = ref [] in
  (* point-to-point /30s out of 172.16.0.0/12 *)
  let connect a b =
    let base = Ip.of_string "172.16.0.0" + (4 * !link_counter) in
    incr link_counter;
    let pfx = P.make base 30 in
    let ip_a = base + 1 and ip_b = base + 2 in
    let if_a = add_iface a pfx ip_a and if_b = add_iface b pfx ip_b in
    links := (a, if_a, b, if_b) :: !links;
    let ba = Hashtbl.find devices a and bb = Hashtbl.find devices b in
    ba.neighbors <-
      ba.neighbors
      @ [
          {
            A.nbr_ip = ip_b;
            nbr_remote_as = bb.asn;
            nbr_rm_in = None;
            nbr_rm_out = None;
            nbr_rr_client = false;
          };
        ];
    bb.neighbors <-
      bb.neighbors
      @ [
          {
            A.nbr_ip = ip_a;
            nbr_remote_as = ba.asn;
            nbr_rm_in = None;
            nbr_rm_out = None;
            nbr_rr_client = false;
          };
        ]
  in
  (* intra-pod full bipartite tor-agg; agg j uplinks to its core group *)
  for p = 0 to pods - 1 do
    for i = 0 to half - 1 do
      for j = 0 to half - 1 do
        connect (tor p i) (agg p j)
      done
    done;
    for j = 0 to half - 1 do
      for c = 0 to half - 1 do
        connect (agg p j) (core ((j * half) + c))
      done
    done
  done;
  (* ToR host subnets *)
  let tor_subnets = Hashtbl.create 32 in
  for p = 0 to pods - 1 do
    for i = 0 to half - 1 do
      let name = tor p i in
      let subnet = P.make (Ip.of_octets 10 p i 0) 24 in
      Hashtbl.replace tor_subnets name subnet;
      let _ = add_iface name subnet (Ip.of_octets 10 p i 1) in
      let b = Hashtbl.find devices name in
      b.networks <- b.networks @ [ subnet ]
    done
  done;
  (* core external backbone peers behind an import filter *)
  let core_peers = Hashtbl.create 16 in
  for c = 0 to (half * half) - 1 do
    let name = core c in
    let b = Hashtbl.find devices name in
    let base = Ip.of_octets 192 168 (c mod 256) 0 in
    let pfx = P.make base 30 in
    let my_ip = base + 1 and peer_ip = base + 2 in
    let _ = add_iface name pfx my_ip in
    Hashtbl.replace core_peers name ("peer:" ^ Ip.to_string peer_ip);
    b.plists <-
      [
        {
          A.pl_name = "NO_INTERNAL";
          pl_entries =
            [
              {
                A.pl_action = A.Deny;
                pl_prefix = P.of_string "10.0.0.0/8";
                pl_ge = None;
                pl_le = Some 32;
              };
              {
                A.pl_action = A.Deny;
                pl_prefix = P.of_string "172.16.0.0/12";
                pl_ge = None;
                pl_le = Some 32;
              };
              {
                A.pl_action = A.Permit;
                pl_prefix = P.of_string "0.0.0.0/0";
                pl_ge = Some 0;
                pl_le = Some 32;
              };
            ];
        };
      ];
    b.rmaps <-
      [
        {
          A.rm_name = "BACKBONE_IN";
          rm_clauses =
            [
              {
                A.rm_seq = 10;
                rm_action = A.Permit;
                rm_matches = [ A.Match_prefix_list "NO_INTERNAL" ];
                rm_sets = [];
              };
            ];
        };
      ];
    b.neighbors <-
      b.neighbors
      @ [
          {
            A.nbr_ip = peer_ip;
            nbr_remote_as = 65000;
            nbr_rm_in = Some "BACKBONE_IN";
            nbr_rm_out = None;
            nbr_rr_client = false;
          };
        ]
  done;
  (* materialize *)
  let finish name =
    let b = Hashtbl.find devices name in
    {
      (A.empty_device name) with
      A.dev_interfaces = b.ifaces;
      dev_prefix_lists = b.plists;
      dev_route_maps = b.rmaps;
      dev_bgp =
        Some
          {
            (A.empty_bgp b.asn) with
            A.bgp_networks = b.networks;
            bgp_neighbors = b.neighbors;
            bgp_multipath = true;
          };
    }
  in
  let names = List.rev !order in
  let devs = List.map finish names in
  let topo =
    List.fold_left
      (fun t (a, ia, b, ib) ->
        Net.Topology.add_link t
          { Net.Topology.a = { device = a; interface = ia }; b = { device = b; interface = ib } })
      Net.Topology.empty !links
  in
  let network = { A.net_devices = devs; net_topology = topo } in
  let is_prefix pre name = String.length name >= String.length pre && String.sub name 0 (String.length pre) = pre in
  {
    network;
    pods;
    tors = List.filter (is_prefix "tor_") names;
    aggregations = List.filter (is_prefix "agg_") names;
    cores = List.filter (is_prefix "core_") names;
    tor_subnet = (fun name -> Hashtbl.find tor_subnets name);
    core_peer = (fun name -> Hashtbl.find core_peers name);
  }
