(** Folded-Clos (fat-tree) data centers in the style of the paper's
    synthetic benchmarks (§8.2, Figure 8): BGP on every device with
    multipath enabled, a /24 per top-of-rack switch, and core (spine)
    routers peering with an external backbone behind route filters.

    With [pods = k] (even), the topology has k pods of k/2 ToR and k/2
    aggregation routers plus (k/2)² cores: 5, 45, 125, 245 and 405
    routers for k = 2, 6, 10, 14, 18 — the sizes in Figure 8. *)

type t = {
  network : Config.Ast.network;
  pods : int;
  tors : string list;
  aggregations : string list;
  cores : string list;
  tor_subnet : string -> Net.Prefix.t;  (** the /24 advertised by a ToR *)
  core_peer : string -> string;  (** external peer name at a core router *)
}

val make : pods:int -> t
(** @raise Invalid_argument when [pods] is odd or < 2. *)

val num_routers : pods:int -> int
