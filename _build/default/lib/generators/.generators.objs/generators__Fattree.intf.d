lib/generators/fattree.mli: Config Net
