lib/generators/fattree.ml: Config Hashtbl List Net Printf String
