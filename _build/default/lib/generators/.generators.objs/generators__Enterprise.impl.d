lib/generators/enterprise.ml: Config Hashtbl List Net Printf Random
