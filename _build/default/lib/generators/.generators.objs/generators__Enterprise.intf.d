lib/generators/enterprise.mli: Config Net
