module Rat = Exactnum.Rat
module Bigint = Exactnum.Bigint

type t = { coeffs : (Term.t * Rat.t) list; const : Rat.t }

exception Nonlinear of Term.t

module Imap = Map.Make (Int)

let of_term t =
  (* Accumulate coefficients in a map keyed by term id. *)
  let vars : Term.t Imap.t ref = ref Imap.empty in
  let coeffs = ref Imap.empty in
  let const = ref Rat.zero in
  let add_coeff v q =
    vars := Imap.add (Term.id v) v !vars;
    coeffs :=
      Imap.update (Term.id v)
        (function None -> Some q | Some q0 -> Some (Rat.add q0 q))
        !coeffs
  in
  let rec go scale (t : Term.t) =
    match t.node with
    | Term.Int_const n -> const := Rat.add !const (Rat.mul scale (Rat.of_int n))
    | Term.Rat_const q -> const := Rat.add !const (Rat.mul scale q)
    | Term.Var _ -> add_coeff t scale
    | Term.Add (a, b) ->
      go scale a;
      go scale b
    | Term.Sub (a, b) ->
      go scale a;
      go (Rat.neg scale) b
    | Term.Scale (q, a) -> go (Rat.mul scale q) a
    | Term.True | Term.False | Term.Not _ | Term.And _ | Term.Or _ | Term.Implies _
    | Term.Iff _ | Term.Ite _ | Term.At_most _ | Term.Leq _ | Term.Lt _ | Term.Eq _
    | Term.Bv_const _ | Term.Bv_and _ | Term.Bv_ule _ -> raise (Nonlinear t)
  in
  go Rat.one t;
  let coeffs =
    Imap.fold
      (fun id q acc -> if Rat.is_zero q then acc else (Imap.find id !vars, q) :: acc)
      !coeffs []
  in
  let coeffs = List.sort (fun (a, _) (b, _) -> Stdlib.compare (Term.id a) (Term.id b)) coeffs in
  { coeffs; const = !const }

let sub a b =
  let negated = { coeffs = List.map (fun (v, q) -> (v, Rat.neg q)) b.coeffs; const = Rat.neg b.const } in
  let m = Hashtbl.create 16 in
  List.iter (fun (v, q) -> Hashtbl.replace m (Term.id v) (v, q)) a.coeffs;
  List.iter
    (fun (v, q) ->
      match Hashtbl.find_opt m (Term.id v) with
      | None -> Hashtbl.replace m (Term.id v) (v, q)
      | Some (_, q0) -> Hashtbl.replace m (Term.id v) (v, Rat.add q0 q))
    negated.coeffs;
  let coeffs =
    Hashtbl.fold (fun _ (v, q) acc -> if Rat.is_zero q then acc else (v, q) :: acc) m []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare (Term.id a) (Term.id b))
  in
  { coeffs; const = Rat.add a.const negated.const }

type int_diff = { x : Term.t option; y : Term.t option; k : int }

type classified =
  | Trivial of bool
  | Idl of int_diff
  | Lra of { coeffs : (Term.t * Rat.t) list; bound : Rat.t }

exception Not_difference_logic of Term.t * Term.t

let rat_to_int_exn q =
  assert (Bigint.equal (Rat.den q) Bigint.one);
  match Bigint.to_int_opt (Rat.num q) with
  | Some n -> n
  | None -> failwith "Linexp: integer constant exceeds native int range"

(* Floor of a rational. *)
let rat_floor q =
  let num = Rat.num q and den = Rat.den q in
  let quot, rem = Bigint.divmod num den in
  if Bigint.is_zero rem || Bigint.sign num >= 0 then quot else Bigint.sub quot Bigint.one

let classify_leq ~strict a b =
  let la = of_term a and lb = of_term b in
  (* a <= b  <=>  (la - lb) <= 0 : sum coeffs + const <= 0 *)
  let d = sub la lb in
  let is_int = Sort.equal (Term.sort a) Sort.Int in
  match d.coeffs with
  | [] ->
    let cmp = Rat.compare d.const Rat.zero in
    Trivial (if strict then cmp < 0 else cmp <= 0)
  | coeffs when is_int ->
    (* Scale to integer coefficients, divide by their gcd, tighten. *)
    let denom_lcm =
      List.fold_left
        (fun acc (_, q) ->
          let den = Rat.den q in
          let g = Bigint.gcd acc den in
          let l, _ = Bigint.divmod (Bigint.mul acc den) g in
          l)
        (Rat.den d.const) coeffs
    in
    let scaled_coeffs =
      List.map (fun (v, q) -> (v, Rat.mul q (Rat.of_bigint denom_lcm))) coeffs
    in
    let scaled_const = Rat.mul d.const (Rat.of_bigint denom_lcm) in
    let g =
      List.fold_left (fun acc (_, q) -> Bigint.gcd acc (Rat.num q)) Bigint.zero scaled_coeffs
    in
    let int_coeffs =
      List.map (fun (v, q) -> (v, rat_to_int_exn (Rat.div q (Rat.of_bigint g)))) scaled_coeffs
    in
    (* The left-hand side is an integer, so:
         sum <= b  tightens to  sum <= floor(b)
         sum <  b  tightens to  sum <= ceil(b)-1, which is floor(b) for
         fractional b and b-1 for integral b. *)
    let bound_rat = Rat.div (Rat.neg scaled_const) (Rat.of_bigint g) in
    let integral = Bigint.equal (Rat.den bound_rat) Bigint.one in
    let floored = rat_floor bound_rat in
    let tightened = if strict && integral then Bigint.sub floored Bigint.one else floored in
    let k =
      match Bigint.to_int_opt tightened with
      | Some n -> n
      | None -> failwith "Linexp: difference bound exceeds native int range"
    in
    (match int_coeffs with
     | [ (x, 1) ] -> Idl { x = Some x; y = None; k }
     | [ (y, -1) ] -> Idl { x = None; y = Some y; k }
     | [ (x, 1); (y, -1) ] | [ (y, -1); (x, 1) ] -> Idl { x = Some x; y = Some y; k }
     | _ -> raise (Not_difference_logic (a, b)))
  | coeffs ->
    (* Rational: canonicalize by dividing through by |c_1|. *)
    let lead = match coeffs with (_, q) :: _ -> Rat.abs q | [] -> Rat.one in
    let coeffs = List.map (fun (v, q) -> (v, Rat.div q lead)) coeffs in
    let bound = Rat.div (Rat.neg d.const) lead in
    Lra { coeffs; bound }
