module Rat = Exactnum.Rat

let sort_str = function
  | Sort.Bool -> "Bool"
  | Sort.Int -> "Int"
  | Sort.Real -> "Real"
  | Sort.Bitvec w -> Printf.sprintf "(_ BitVec %d)" w

(* SMT-LIB identifiers: wrap anything with unusual characters in | |. *)
let ident s =
  let plain =
    String.for_all
      (fun c ->
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
        || c = '-' || c = '.')
      s
  in
  if plain && s <> "" then s else "|" ^ s ^ "|"

let rec collect_vars seen acc (t : Term.t) =
  if Hashtbl.mem seen (Term.id t) then acc
  else begin
    Hashtbl.add seen (Term.id t) ();
    match t.Term.node with
    | Term.Var name -> (name, Term.sort t) :: acc
    | Term.True | Term.False | Term.Int_const _ | Term.Rat_const _ | Term.Bv_const _ -> acc
    | Term.Not a | Term.Scale (_, a) -> collect_vars seen acc a
    | Term.And l | Term.Or l | Term.At_most (_, l) -> List.fold_left (collect_vars seen) acc l
    | Term.Implies (a, b)
    | Term.Iff (a, b)
    | Term.Add (a, b)
    | Term.Sub (a, b)
    | Term.Leq (a, b)
    | Term.Lt (a, b)
    | Term.Eq (a, b)
    | Term.Bv_and (a, b)
    | Term.Bv_ule (a, b) -> collect_vars seen (collect_vars seen acc a) b
    | Term.Ite (c, a, b) -> collect_vars seen (collect_vars seen (collect_vars seen acc c) a) b
  end

let rec expr (t : Term.t) =
  match t.Term.node with
  | Term.True -> "true"
  | Term.False -> "false"
  | Term.Var name -> ident name
  | Term.Not a -> app "not" [ a ]
  | Term.And l -> app "and" l
  | Term.Or l -> app "or" l
  | Term.Implies (a, b) -> app "=>" [ a; b ]
  | Term.Iff (a, b) -> app "=" [ a; b ]
  | Term.Ite (c, a, b) -> app "ite" [ c; a; b ]
  | Term.At_most (k, l) ->
    (* ((_ at-most k) x1 ... xn) *)
    Printf.sprintf "((_ at-most %d) %s)" k (String.concat " " (List.map expr l))
  | Term.Int_const n -> if n < 0 then Printf.sprintf "(- %d)" (-n) else string_of_int n
  | Term.Rat_const q ->
    let num = Exactnum.Bigint.to_string (Rat.num q) in
    let den = Exactnum.Bigint.to_string (Rat.den q) in
    if den = "1" then
      if String.length num > 0 && num.[0] = '-' then
        Printf.sprintf "(- %s.0)" (String.sub num 1 (String.length num - 1))
      else num ^ ".0"
    else Printf.sprintf "(/ %s.0 %s.0)" num den
  | Term.Add (a, b) -> app "+" [ a; b ]
  | Term.Sub (a, b) -> app "-" [ a; b ]
  | Term.Scale (q, a) -> Printf.sprintf "(* %s %s)" (expr (Term.rat_const q)) (expr a)
  | Term.Leq (a, b) -> app "<=" [ a; b ]
  | Term.Lt (a, b) -> app "<" [ a; b ]
  | Term.Eq (a, b) -> app "=" [ a; b ]
  | Term.Bv_const v ->
    (match Term.sort t with
     | Sort.Bitvec w -> Printf.sprintf "(_ bv%d %d)" v w
     | Sort.Bool | Sort.Int | Sort.Real -> assert false)
  | Term.Bv_and (a, b) -> app "bvand" [ a; b ]
  | Term.Bv_ule (a, b) -> app "bvule" [ a; b ]

and app op args = Printf.sprintf "(%s %s)" op (String.concat " " (List.map expr args))

let declarations terms =
  let seen = Hashtbl.create 256 in
  let vars = List.fold_left (collect_vars seen) [] terms in
  let vars = List.sort compare (List.map (fun (n, s) -> (n, sort_str s)) vars) in
  String.concat "\n"
    (List.map (fun (n, s) -> Printf.sprintf "(declare-fun %s () %s)" (ident n) s) vars)

let assertion t = Printf.sprintf "(assert %s)" (expr t)

let script terms =
  let b = Buffer.create 4096 in
  Buffer.add_string b "(set-logic ALL)\n";
  Buffer.add_string b (declarations terms);
  Buffer.add_char b '\n';
  List.iter
    (fun t ->
      Buffer.add_string b (assertion t);
      Buffer.add_char b '\n')
    terms;
  Buffer.add_string b "(check-sat)\n";
  Buffer.contents b
