type constr = { x : int; y : int; k : int; tag : int }

(* Constraint [x - y <= k] becomes edge [y --k--> x]; with a (virtual)
   super-source at distance 0 from every node, shortest distances [d]
   satisfy [d.(x) <= d.(y) + k], i.e. the distances themselves are a
   model.  A negative cycle is exactly an infeasible subset. *)

(* Reference implementation: full Bellman–Ford rounds.  Used as a
   fallback when the fast path cannot extract a cycle. *)
let check_bf ~nvars constraints =
  let edges = Array.of_list constraints in
  let dist = Array.make (max nvars 1) 0 in
  let pred = Array.make (max nvars 1) (-1) in
  let improved = ref true in
  let rounds = ref 0 in
  let last_relaxed = ref (-1) in
  while !improved && !rounds <= nvars do
    improved := false;
    Array.iteri
      (fun i e ->
        if dist.(e.y) + e.k < dist.(e.x) then begin
          dist.(e.x) <- dist.(e.y) + e.k;
          pred.(e.x) <- i;
          improved := true;
          last_relaxed := e.x
        end)
      edges;
    incr rounds
  done;
  if not !improved then Ok dist
  else begin
    (* a node relaxed in round nvars+1 reaches a negative cycle by
       following predecessor edges nvars times *)
    let node = ref !last_relaxed in
    for _ = 1 to nvars do
      node := edges.(pred.(!node)).y
    done;
    let start = !node in
    let tags = ref [] in
    let continue = ref true in
    while !continue do
      let e = edges.(pred.(!node)) in
      tags := e.tag :: !tags;
      node := e.y;
      if !node = start then continue := false
    done;
    Error !tags
  end

exception Cycle of int list
exception Fallback

(* Fast path: SPFA (queue-based Bellman–Ford).  A node relaxed more than
   [nvars] times witnesses a negative cycle, extracted by walking
   predecessor edges with marking. *)
let check ~nvars constraints =
  let n = max nvars 1 in
  let edges = Array.of_list constraints in
  if Array.length edges = 0 then Ok (Array.make n 0)
  else begin
    let adj = Array.make n [] in
    Array.iteri (fun i e -> adj.(e.y) <- i :: adj.(e.y)) edges;
    let dist = Array.make n 0 in
    let pred = Array.make n (-1) in
    let relaxations = Array.make n 0 in
    let in_queue = Array.make n true in
    let queue = Queue.create () in
    for v = 0 to n - 1 do
      Queue.push v queue
    done;
    let extract_cycle from_node =
      let mark = Array.make n false in
      let node = ref from_node in
      (* walk to enter the cycle *)
      let entered = ref (-1) in
      (try
         while true do
           if mark.(!node) then begin
             entered := !node;
             raise Exit
           end;
           mark.(!node) <- true;
           if pred.(!node) < 0 then raise Fallback;
           node := edges.(pred.(!node)).y
         done
       with Exit -> ());
      let start = !entered in
      let tags = ref [] in
      let cur = ref start in
      let continue = ref true in
      while !continue do
        let e = edges.(pred.(!cur)) in
        tags := e.tag :: !tags;
        cur := e.y;
        if !cur = start then continue := false
      done;
      raise (Cycle !tags)
    in
    match
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        in_queue.(u) <- false;
        let du = dist.(u) in
        List.iter
          (fun i ->
            let e = edges.(i) in
            if du + e.k < dist.(e.x) then begin
              dist.(e.x) <- du + e.k;
              pred.(e.x) <- i;
              relaxations.(e.x) <- relaxations.(e.x) + 1;
              if relaxations.(e.x) > n then extract_cycle e.x;
              if not in_queue.(e.x) then begin
                in_queue.(e.x) <- true;
                Queue.push e.x queue
              end
            end)
          adj.(u)
      done
    with
    | () -> Ok dist
    | exception Cycle tags -> Error tags
    | exception Fallback -> check_bf ~nvars constraints
  end

(* Collect up to [max_cores] independent negative cycles by repeatedly
   removing the edges of each found cycle.  More learned clauses per
   theory round means fewer SAT/theory iterations. *)
let check_many ~nvars ~max_cores constraints =
  let rec go remaining acc n =
    if n = 0 then acc
    else begin
      match check ~nvars remaining with
      | Ok _ -> acc
      | Error tags ->
        let remaining = List.filter (fun c -> not (List.mem c.tag tags)) remaining in
        go remaining (tags :: acc) (n - 1)
    end
  in
  match check ~nvars constraints with
  | Ok model -> Ok model
  | Error tags ->
    let remaining = List.filter (fun c -> not (List.mem c.tag tags)) constraints in
    Error (go remaining [ tags ] (max_cores - 1))
