(** SMT-LIB 2 export of term assertions — for debugging encodings and
    for cross-checking against external solvers where available. *)

val declarations : Term.t list -> string
(** [declare-fun] lines for every variable occurring in the terms. *)

val assertion : Term.t -> string
(** One [(assert ...)] line. *)

val script : Term.t list -> string
(** A complete script: declarations, assertions, [(check-sat)]. *)
