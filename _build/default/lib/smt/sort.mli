(** Sorts (types) of SMT terms. *)

type t =
  | Bool
  | Int  (** mathematical integers (backed by OCaml [int] constants) *)
  | Real  (** exact rationals *)
  | Bitvec of int  (** fixed-width bit vectors, width in bits (1..62) *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
