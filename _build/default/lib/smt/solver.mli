(** Top-level SMT solver: lazy DPLL(T) over the CDCL core with
    difference-logic and linear-rational theory solvers, plus eager
    bit-blasting for bit-vector terms.

    Usage: {!create}, {!assert_term} any number of Boolean terms, then
    {!check} once.  [check] answers for the conjunction of everything
    asserted. *)

type t

type result = Sat of Model.t | Unsat

type stats = {
  sat_vars : int;
  sat_clauses : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  theory_rounds : int;  (** number of final theory checks performed *)
}

val create : unit -> t
val assert_term : t -> Term.t -> unit

val check : t -> result
(** Decide the asserted conjunction.  May be called once per solver. *)

val check_term : Term.t -> result
(** One-shot convenience: a fresh solver asserting a single term. *)

val stats : t -> stats
