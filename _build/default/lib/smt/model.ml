module Rat = Exactnum.Rat

type value = Bool of bool | Int of int | Rat of Rat.t | Bv of int
type t = { table : (int, value) Hashtbl.t; mutable binds : (Term.t * value) list }

let create ~bools ~ints ~rats ~bvs =
  let table = Hashtbl.create 256 in
  let binds = ref [] in
  let add (term, v) =
    Hashtbl.replace table (Term.id term) v;
    binds := (term, v) :: !binds
  in
  List.iter (fun (t, b) -> add (t, Bool b)) bools;
  List.iter (fun (t, n) -> add (t, Int n)) ints;
  List.iter (fun (t, q) -> add (t, Rat q)) rats;
  List.iter (fun (t, v) -> add (t, Bv v)) bvs;
  { table; binds = !binds }

let value_of m t = Hashtbl.find_opt m.table (Term.id t)

let bool_value m t = match value_of m t with Some (Bool b) -> b | _ -> false
let int_value m t = match value_of m t with Some (Int n) -> n | _ -> 0
let rat_value m t = match value_of m t with Some (Rat q) -> q | _ -> Rat.zero
let bv_value m t = match value_of m t with Some (Bv v) -> v | _ -> 0

let default_for = function
  | Sort.Bool -> Bool false
  | Sort.Int -> Int 0
  | Sort.Real -> Rat Rat.zero
  | Sort.Bitvec _ -> Bv 0

let as_bool = function Bool b -> b | _ -> invalid_arg "Model.eval: expected Bool"

let as_rat = function
  | Int n -> Rat.of_int n
  | Rat q -> q
  | _ -> invalid_arg "Model.eval: expected arithmetic value"

let as_bv = function Bv v -> v | _ -> invalid_arg "Model.eval: expected BitVec"

let rec eval m (t : Term.t) =
  match t.node with
  | Term.True -> Bool true
  | Term.False -> Bool false
  | Term.Var _ -> (match value_of m t with Some v -> v | None -> default_for (Term.sort t))
  | Term.Not a -> Bool (not (eval_bool m a))
  | Term.And l -> Bool (List.for_all (eval_bool m) l)
  | Term.Or l -> Bool (List.exists (eval_bool m) l)
  | Term.Implies (a, b) -> Bool ((not (eval_bool m a)) || eval_bool m b)
  | Term.Iff (a, b) -> Bool (eval_bool m a = eval_bool m b)
  | Term.Ite (c, a, b) -> if eval_bool m c then eval m a else eval m b
  | Term.At_most (k, l) ->
    Bool (List.length (List.filter (eval_bool m) l) <= k)
  | Term.Int_const n -> Int n
  | Term.Rat_const q -> Rat q
  | Term.Add (a, b) -> arith m t a b Rat.add
  | Term.Sub (a, b) -> arith m t a b Rat.sub
  | Term.Scale (q, a) ->
    let v = Rat.mul q (as_rat (eval m a)) in
    wrap_arith (Term.sort t) v
  | Term.Leq (a, b) -> Bool (Rat.leq (as_rat (eval m a)) (as_rat (eval m b)))
  | Term.Lt (a, b) -> Bool (Rat.lt (as_rat (eval m a)) (as_rat (eval m b)))
  | Term.Eq (a, b) ->
    (match Term.sort a with
     | Sort.Bitvec _ -> Bool (as_bv (eval m a) = as_bv (eval m b))
     | _ -> Bool (Rat.equal (as_rat (eval m a)) (as_rat (eval m b))))
  | Term.Bv_const v -> Bv v
  | Term.Bv_and (a, b) -> Bv (as_bv (eval m a) land as_bv (eval m b))
  | Term.Bv_ule (a, b) -> Bool (as_bv (eval m a) <= as_bv (eval m b))

and wrap_arith sort v =
  match sort with
  | Sort.Int ->
    (match Exactnum.Bigint.to_int_opt (Rat.num v) with
     | Some n when Exactnum.Bigint.equal (Rat.den v) Exactnum.Bigint.one -> Int n
     | _ -> Rat v)
  | _ -> Rat v

and arith m t a b op =
  let v = op (as_rat (eval m a)) (as_rat (eval m b)) in
  wrap_arith (Term.sort t) v

and eval_bool m t = as_bool (eval m t)

let bindings m = m.binds

let pp_value fmt = function
  | Bool b -> Format.pp_print_bool fmt b
  | Int n -> Format.pp_print_int fmt n
  | Rat q -> Rat.pp fmt q
  | Bv v -> Format.fprintf fmt "#x%x" v

let pp fmt m =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Term.compare a b) m.binds
  in
  List.iter
    (fun (t, v) -> Format.fprintf fmt "%a = %a@." Term.pp t pp_value v)
    sorted
