(** Hash-consed SMT terms.

    Terms are maximally shared: structurally equal terms are physically
    equal, so [t1 == t2] iff they denote the same term, and each term has
    a unique [id] usable as a key.

    Smart constructors perform light simplification (constant folding,
    flattening, double-negation elimination).  They also enforce sorts
    and raise [Invalid_argument] on ill-sorted applications.

    Integer arithmetic is restricted to the *difference-logic* fragment
    downstream (see {!Cnf}): integer atoms must normalize to
    [x - y <= k], [x <= k] or [-x <= k].  Real (rational) arithmetic is
    full linear arithmetic. *)

type t = private { id : int; node : node; sort : Sort.t }

and node =
  | True
  | False
  | Var of string
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Ite of t * t * t  (** Boolean branches only *)
  | At_most of int * t list  (** cardinality: at most [k] of the terms hold *)
  | Int_const of int
  | Rat_const of Exactnum.Rat.t
  | Add of t * t
  | Sub of t * t
  | Scale of Exactnum.Rat.t * t
  | Leq of t * t
  | Lt of t * t
  | Eq of t * t  (** operands of any identical non-Bool sort; Bool uses Iff *)
  | Bv_const of int  (** value; width given by the term's sort *)
  | Bv_and of t * t
  | Bv_ule of t * t  (** unsigned bit-vector comparison; sort Bool *)

val sort : t -> Sort.t
val id : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Constructors} *)

val tru : t
val fls : t
val bool_const : bool -> t

val var : string -> Sort.t -> t
(** [var name sort] returns the variable [name].  The same name always
    denotes the same variable; re-declaring it at a different sort
    raises [Invalid_argument]. *)

val fresh_var : ?prefix:string -> Sort.t -> t
(** A variable with a globally unique generated name. *)

val not_ : t -> t
val and_ : t list -> t
val or_ : t list -> t
val implies : t -> t -> t
val iff : t -> t -> t
val ite : t -> t -> t -> t
val xor : t -> t -> t

val at_most : int -> t list -> t
val at_least : int -> t list -> t
val exactly : int -> t list -> t

val int_const : int -> t
val rat_const : Exactnum.Rat.t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Exactnum.Rat.t -> t -> t

val leq : t -> t -> t
val lt : t -> t -> t
val geq : t -> t -> t
val gt : t -> t -> t

val eq : t -> t -> t
(** Polymorphic equality; Boolean operands become {!iff}. *)

val neq : t -> t -> t

val bv_const : width:int -> int -> t
val bv_var : string -> width:int -> t
val bv_and : t -> t -> t
val bv_ule : t -> t -> t
val bv_eq : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val size : t -> int
(** Number of distinct subterms (DAG size). *)
