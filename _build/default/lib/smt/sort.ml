type t = Bool | Int | Real | Bitvec of int

let equal a b =
  match (a, b) with
  | Bool, Bool | Int, Int | Real, Real -> true
  | Bitvec w1, Bitvec w2 -> w1 = w2
  | (Bool | Int | Real | Bitvec _), _ -> false

let to_string = function
  | Bool -> "Bool"
  | Int -> "Int"
  | Real -> "Real"
  | Bitvec w -> Printf.sprintf "BitVec(%d)" w

let pp fmt t = Format.pp_print_string fmt (to_string t)
