(** A CDCL SAT solver (two-watched literals, VSIDS, 1UIP learning,
    Luby restarts, activity-based learnt-clause deletion).

    Literals are integers: variable [v]'s positive literal is [2*v] and
    its negative literal is [2*v+1].  Variables are allocated with
    {!new_var} and clauses added with {!add_clause}; {!solve} then decides
    satisfiability.  A [final_check] callback supports lazy SMT: it runs
    whenever the solver reaches a full assignment and may veto it by
    returning conflict clauses to learn. *)

type t

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val nvars : t -> int

val pos_lit : int -> int
val neg_lit : int -> int
val lit_var : int -> int
val lit_sign : int -> bool
(** [lit_sign l] is [true] for a positive literal. *)

val lit_neg : int -> int

val add_clause : t -> int list -> unit
(** Add a clause (a disjunction of literals).  Must be called at decision
    level 0, i.e. before {!solve} or from inside a [final_check]
    callback return (the solver restarts itself in that case). *)

val solve :
  ?final_check:(t -> int list list) ->
  ?partial_check:(t -> int list list) ->
  ?partial_interval:int ->
  ?on_backtrack:(int -> unit) ->
  t ->
  result
(** [final_check s] is invoked on every full propositional assignment.
    Returning [[]] accepts the assignment ({!solve} answers [Sat]);
    returning conflict clauses (each must be false under the current
    assignment) forces the search to continue.

    [partial_check s] is invoked every [partial_interval] decisions on
    the current {e partial} assignment (after propagation); any conflict
    clause over currently-assigned literals prunes the search early.

    [on_backtrack n] fires whenever the trail is truncated to length
    [n] (backjumps and restarts), letting theory solvers pop their
    assertion stacks in lock step with the trail. *)

val value_var : t -> int -> bool
(** Value of a variable in the current (full) assignment.  Meaningful
    after [Sat], or inside a [final_check] callback. *)

val value_lit : t -> int -> bool

val var_assigned : t -> int -> bool
(** Whether the variable is assigned in the current partial assignment
    (for use inside [partial_check]). *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val num_clauses : t -> int

val trail_size : t -> int
(** Current length of the assignment trail (theory-integration use). *)

val trail_lit : t -> int -> int
(** The [i]-th literal on the trail, in assignment order. *)
