module Rat = Exactnum.Rat

type t = { id : int; node : node; sort : Sort.t }

and node =
  | True
  | False
  | Var of string
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Ite of t * t * t
  | At_most of int * t list
  | Int_const of int
  | Rat_const of Rat.t
  | Add of t * t
  | Sub of t * t
  | Scale of Rat.t * t
  | Leq of t * t
  | Lt of t * t
  | Eq of t * t
  | Bv_const of int
  | Bv_and of t * t
  | Bv_ule of t * t

(* -- hash-consing ----------------------------------------------------------- *)

let node_equal n1 n2 =
  match (n1, n2) with
  | True, True | False, False -> true
  | Var a, Var b -> String.equal a b
  | Not a, Not b -> a == b
  | And l1, And l2 | Or l1, Or l2 ->
    List.length l1 = List.length l2 && List.for_all2 (fun a b -> a == b) l1 l2
  | Implies (a1, b1), Implies (a2, b2)
  | Iff (a1, b1), Iff (a2, b2)
  | Add (a1, b1), Add (a2, b2)
  | Sub (a1, b1), Sub (a2, b2)
  | Leq (a1, b1), Leq (a2, b2)
  | Lt (a1, b1), Lt (a2, b2)
  | Eq (a1, b1), Eq (a2, b2)
  | Bv_and (a1, b1), Bv_and (a2, b2)
  | Bv_ule (a1, b1), Bv_ule (a2, b2) -> a1 == a2 && b1 == b2
  | Ite (c1, t1, e1), Ite (c2, t2, e2) -> c1 == c2 && t1 == t2 && e1 == e2
  | At_most (k1, l1), At_most (k2, l2) ->
    k1 = k2 && List.length l1 = List.length l2 && List.for_all2 (fun a b -> a == b) l1 l2
  | Int_const a, Int_const b | Bv_const a, Bv_const b -> a = b
  | Rat_const a, Rat_const b -> Rat.equal a b
  | Scale (q1, a1), Scale (q2, a2) -> Rat.equal q1 q2 && a1 == a2
  | ( ( True | False | Var _ | Not _ | And _ | Or _ | Implies _ | Iff _ | Ite _ | At_most _
      | Int_const _ | Rat_const _ | Add _ | Sub _ | Scale _ | Leq _ | Lt _ | Eq _ | Bv_const _
      | Bv_and _ | Bv_ule _ ),
      _ ) -> false

let combine h1 h2 = (h1 * 65599) + h2

let node_hash n =
  match n with
  | True -> 1
  | False -> 2
  | Var s -> combine 3 (Hashtbl.hash s)
  | Not a -> combine 5 a.id
  | And l -> List.fold_left (fun acc x -> combine acc x.id) 7 l
  | Or l -> List.fold_left (fun acc x -> combine acc x.id) 11 l
  | Implies (a, b) -> combine 13 (combine a.id b.id)
  | Iff (a, b) -> combine 17 (combine a.id b.id)
  | Ite (c, a, b) -> combine 19 (combine c.id (combine a.id b.id))
  | At_most (k, l) -> List.fold_left (fun acc x -> combine acc x.id) (combine 23 k) l
  | Int_const n -> combine 29 (Hashtbl.hash n)
  | Rat_const q -> combine 31 (Hashtbl.hash (Rat.to_string q))
  | Add (a, b) -> combine 37 (combine a.id b.id)
  | Sub (a, b) -> combine 41 (combine a.id b.id)
  | Scale (q, a) -> combine 43 (combine (Hashtbl.hash (Rat.to_string q)) a.id)
  | Leq (a, b) -> combine 47 (combine a.id b.id)
  | Lt (a, b) -> combine 53 (combine a.id b.id)
  | Eq (a, b) -> combine 59 (combine a.id b.id)
  | Bv_const n -> combine 61 (Hashtbl.hash n)
  | Bv_and (a, b) -> combine 67 (combine a.id b.id)
  | Bv_ule (a, b) -> combine 71 (combine a.id b.id)

module Key = struct
  type nonrec t = node * Sort.t

  let equal (n1, s1) (n2, s2) = Sort.equal s1 s2 && node_equal n1 n2
  let hash (n, s) = combine (node_hash n) (Hashtbl.hash s)
end

module Table = Hashtbl.Make (Key)

let table : t Table.t = Table.create 4096
let next_id = ref 0

let mk node sort =
  match Table.find_opt table (node, sort) with
  | Some t -> t
  | None ->
    let t = { id = !next_id; node; sort } in
    incr next_id;
    Table.add table (node, sort) t;
    t

let sort t = t.sort
let id t = t.id
let equal a b = a == b
let compare a b = Stdlib.compare a.id b.id
let hash t = t.id

(* -- boolean constructors --------------------------------------------------- *)

let tru = mk True Sort.Bool
let fls = mk False Sort.Bool
let bool_const b = if b then tru else fls

let require_sort what expected t =
  if not (Sort.equal t.sort expected) then
    invalid_arg
      (Printf.sprintf "Term.%s: expected sort %s, got %s" what (Sort.to_string expected)
         (Sort.to_string t.sort))

let vars : (string, t) Hashtbl.t = Hashtbl.create 512

let var name s =
  match Hashtbl.find_opt vars name with
  | Some t ->
    if not (Sort.equal t.sort s) then
      invalid_arg
        (Printf.sprintf "Term.var: %s re-declared at sort %s (was %s)" name (Sort.to_string s)
           (Sort.to_string t.sort));
    t
  | None ->
    let t = mk (Var name) s in
    Hashtbl.add vars name t;
    t

let fresh_counter = ref 0

let fresh_var ?(prefix = "_t") s =
  incr fresh_counter;
  var (Printf.sprintf "%s!%d" prefix !fresh_counter) s

let not_ t =
  require_sort "not_" Sort.Bool t;
  match t.node with
  | True -> fls
  | False -> tru
  | Not inner -> inner
  | Var _ | And _ | Or _ | Implies _ | Iff _ | Ite _ | At_most _ | Leq _ | Lt _ | Eq _ | Bv_ule _
    -> mk (Not t) Sort.Bool
  | Int_const _ | Rat_const _ | Add _ | Sub _ | Scale _ | Bv_const _ | Bv_and _ ->
    (* unreachable: sort check above rejects non-Bool terms *)
    assert false

(* Flatten, drop neutral elements, detect complementary pairs, dedupe. *)
let assemble_nary ~is_and terms =
  let unit = if is_and then tru else fls in
  let zero = if is_and then fls else tru in
  let module Ids = Set.Make (Int) in
  let seen = ref Ids.empty in
  let negs = ref Ids.empty in
  let short_circuit = ref false in
  let acc = ref [] in
  let add_member t =
    (match t.node with
     | Not inner ->
       if Ids.mem inner.id !seen then short_circuit := true
       else negs := Ids.add inner.id !negs
     | _ -> if Ids.mem t.id !negs then short_circuit := true);
    if (not !short_circuit) && not (Ids.mem t.id !seen) then begin
      seen := Ids.add t.id !seen;
      acc := t :: !acc
    end
  in
  let rec walk t =
    if not !short_circuit then begin
      require_sort "bool connective" Sort.Bool t;
      if t == zero then short_circuit := true
      else if t == unit then ()
      else begin
        match (t.node, is_and) with
        | And l, true | Or l, false -> List.iter walk l
        | _ -> add_member t
      end
    end
  in
  List.iter walk terms;
  if !short_circuit then zero
  else begin
    match List.rev !acc with
    | [] -> unit
    | [ t ] -> t
    | ts -> if is_and then mk (And ts) Sort.Bool else mk (Or ts) Sort.Bool
  end

let and_ terms = assemble_nary ~is_and:true terms
let or_ terms = assemble_nary ~is_and:false terms
let implies a b = or_ [ not_ a; b ]
let iff a b = if a == b then tru else and_ [ or_ [ not_ a; b ]; or_ [ a; not_ b ] ]
let ite c t e = and_ [ or_ [ not_ c; t ]; or_ [ c; e ] ]
let xor a b = not_ (iff a b)

let at_most k terms =
  List.iter (require_sort "at_most" Sort.Bool) terms;
  (* Constants can be resolved immediately. *)
  let k = ref k in
  let remaining =
    List.filter
      (fun t ->
        if t == tru then begin
          decr k;
          false
        end
        else t != fls)
      terms
  in
  if !k < 0 then fls
  else if List.length remaining <= !k then tru
  else if !k = 0 then and_ (List.map not_ remaining)
  else mk (At_most (!k, remaining)) Sort.Bool

let at_least k terms =
  (* at least k of n  <=>  at most (n-k) of the negations *)
  at_most (List.length terms - k) (List.map not_ terms)

let exactly k terms = and_ [ at_most k terms; at_least k terms ]

(* -- arithmetic -------------------------------------------------------------- *)

let int_const n = mk (Int_const n) Sort.Int
let rat_const q = mk (Rat_const q) Sort.Real

let arith_sort what a b =
  match (a.sort, b.sort) with
  | Sort.Int, Sort.Int -> Sort.Int
  | Sort.Real, Sort.Real -> Sort.Real
  | _ ->
    invalid_arg
      (Printf.sprintf "Term.%s: incompatible sorts %s and %s" what (Sort.to_string a.sort)
         (Sort.to_string b.sort))

let add a b =
  let s = arith_sort "add" a b in
  match (a.node, b.node) with
  | Int_const x, Int_const y -> int_const (x + y)
  | Rat_const x, Rat_const y -> rat_const (Rat.add x y)
  | Int_const 0, _ -> b
  | _, Int_const 0 -> a
  | _ when s = Sort.Real && a.node = Rat_const Rat.zero -> b
  | _ -> mk (Add (a, b)) s

let sub a b =
  let s = arith_sort "sub" a b in
  match (a.node, b.node) with
  | Int_const x, Int_const y -> int_const (x - y)
  | Rat_const x, Rat_const y -> rat_const (Rat.sub x y)
  | _, Int_const 0 -> a
  | _ -> if a == b then (match s with Sort.Int -> int_const 0 | _ -> rat_const Rat.zero) else mk (Sub (a, b)) s

let scale q t =
  match t.sort with
  | Sort.Int | Sort.Real ->
    (match t.node with
     | Int_const n ->
       let v = Rat.mul q (Rat.of_int n) in
       (match Exactnum.Bigint.to_int_opt (Rat.num v) with
        | Some n when Exactnum.Bigint.equal (Rat.den v) Exactnum.Bigint.one -> int_const n
        | _ -> invalid_arg "Term.scale: non-integer scaling of Int constant")
     | Rat_const r -> rat_const (Rat.mul q r)
     | _ -> if Rat.equal q Rat.one then t else mk (Scale (q, t)) t.sort)
  | Sort.Bool | Sort.Bitvec _ -> invalid_arg "Term.scale: not an arithmetic term"

let cmp_fold op a b =
  match (a.node, b.node) with
  | Int_const x, Int_const y -> Some (op (Stdlib.compare x y) 0)
  | Rat_const x, Rat_const y -> Some (op (Rat.compare x y) 0)
  | _ -> None

let leq a b =
  ignore (arith_sort "leq" a b);
  match cmp_fold ( <= ) a b with
  | Some r -> bool_const r
  | None -> if a == b then tru else mk (Leq (a, b)) Sort.Bool

let lt a b =
  ignore (arith_sort "lt" a b);
  match cmp_fold ( < ) a b with
  | Some r -> bool_const r
  | None -> if a == b then fls else mk (Lt (a, b)) Sort.Bool

let geq a b = leq b a
let gt a b = lt b a

(* -- bit vectors -------------------------------------------------------------- *)

let bv_mask w = if w >= 62 then max_int else (1 lsl w) - 1

let bv_const ~width v =
  if width < 1 || width > 62 then invalid_arg "Term.bv_const: width out of range";
  mk (Bv_const (v land bv_mask width)) (Sort.Bitvec width)

let bv_var name ~width = var name (Sort.Bitvec width)

let bv_width what t =
  match t.sort with
  | Sort.Bitvec w -> w
  | Sort.Bool | Sort.Int | Sort.Real ->
    invalid_arg (Printf.sprintf "Term.%s: not a bit vector" what)

let bv_same_width what a b =
  let w = bv_width what a in
  if bv_width what b <> w then invalid_arg (Printf.sprintf "Term.%s: width mismatch" what);
  w

let bv_and a b =
  let w = bv_same_width "bv_and" a b in
  match (a.node, b.node) with
  | Bv_const x, Bv_const y -> bv_const ~width:w (x land y)
  | _ -> if a == b then a else mk (Bv_and (a, b)) (Sort.Bitvec w)

let bv_ule a b =
  ignore (bv_same_width "bv_ule" a b);
  match (a.node, b.node) with
  | Bv_const x, Bv_const y -> bool_const (x <= y)
  | _ -> if a == b then tru else mk (Bv_ule (a, b)) Sort.Bool

let bv_eq a b =
  ignore (bv_same_width "bv_eq" a b);
  match (a.node, b.node) with
  | Bv_const x, Bv_const y -> bool_const (x = y)
  | _ -> if a == b then tru else mk (Eq (a, b)) Sort.Bool

(* -- polymorphic equality ------------------------------------------------------ *)

let eq a b =
  if not (Sort.equal a.sort b.sort) then
    invalid_arg
      (Printf.sprintf "Term.eq: incompatible sorts %s and %s" (Sort.to_string a.sort)
         (Sort.to_string b.sort));
  match a.sort with
  | Sort.Bool -> iff a b
  | Sort.Int | Sort.Real -> and_ [ leq a b; leq b a ]
  | Sort.Bitvec _ -> bv_eq a b

let neq a b = not_ (eq a b)

(* -- printing -------------------------------------------------------------------- *)

let rec pp fmt t =
  let open Format in
  match t.node with
  | True -> pp_print_string fmt "true"
  | False -> pp_print_string fmt "false"
  | Var s -> pp_print_string fmt s
  | Not a -> fprintf fmt "(not %a)" pp a
  | And l -> fprintf fmt "(and%a)" pp_args l
  | Or l -> fprintf fmt "(or%a)" pp_args l
  | Implies (a, b) -> fprintf fmt "(=> %a %a)" pp a pp b
  | Iff (a, b) -> fprintf fmt "(iff %a %a)" pp a pp b
  | Ite (c, a, b) -> fprintf fmt "(ite %a %a %a)" pp c pp a pp b
  | At_most (k, l) -> fprintf fmt "(at-most %d%a)" k pp_args l
  | Int_const n -> pp_print_int fmt n
  | Rat_const q -> Rat.pp fmt q
  | Add (a, b) -> fprintf fmt "(+ %a %a)" pp a pp b
  | Sub (a, b) -> fprintf fmt "(- %a %a)" pp a pp b
  | Scale (q, a) -> fprintf fmt "(* %a %a)" Rat.pp q pp a
  | Leq (a, b) -> fprintf fmt "(<= %a %a)" pp a pp b
  | Lt (a, b) -> fprintf fmt "(< %a %a)" pp a pp b
  | Eq (a, b) -> fprintf fmt "(= %a %a)" pp a pp b
  | Bv_const v -> fprintf fmt "#x%x" v
  | Bv_and (a, b) -> fprintf fmt "(bvand %a %a)" pp a pp b
  | Bv_ule (a, b) -> fprintf fmt "(bvule %a %a)" pp a pp b

and pp_args fmt l = List.iter (fun t -> Format.fprintf fmt " %a" pp t) l

let to_string t = Format.asprintf "%a" pp t

let size t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      match t.node with
      | True | False | Var _ | Int_const _ | Rat_const _ | Bv_const _ -> ()
      | Not a | Scale (_, a) -> go a
      | And l | Or l | At_most (_, l) -> List.iter go l
      | Implies (a, b)
      | Iff (a, b)
      | Add (a, b)
      | Sub (a, b)
      | Leq (a, b)
      | Lt (a, b)
      | Eq (a, b)
      | Bv_and (a, b)
      | Bv_ule (a, b) -> go a; go b
      | Ite (c, a, b) -> go c; go a; go b
    end
  in
  go t;
  Hashtbl.length seen
