(** Linear rational arithmetic via the dual simplex procedure of
    Dutertre and de Moura (the "general simplex" used in SMT solvers).

    The client declares [n] structural variables and a set of linear
    atoms [sum_i c_i * x_i <= k] (or strict [<]).  Each atom is given a
    slack variable internally.  {!check} decides a conjunction of atom
    assertions (an atom may be asserted positively or negatively —
    negation of [e <= k] is [e > k]) and either returns a rational
    model or a minimal-ish conflict: the tags of the asserted atoms
    involved in the infeasibility.

    Strict inequalities are handled with delta-rationals [(q, d)]
    standing for [q + d*epsilon] for an infinitesimal epsilon; the model
    extraction picks a concrete positive epsilon. *)

type t

type atom = { coeffs : (int * Exactnum.Rat.t) list; bound : Exactnum.Rat.t }
(** The linear expression [sum coeffs] compared to [bound].  Variable
    indices must lie in [0, nvars). *)

val create : nvars:int -> atom array -> t
(** [create ~nvars atoms] prepares a tableau.  Atom [i] is referred to
    by its index in subsequent calls. *)

val check :
  t -> assertions:(int * bool * bool) list -> (Exactnum.Rat.t array, int list) result
(** [check t ~assertions] decides the conjunction of the given atom
    assertions.  Each assertion is [(atom_index, positive, strict)]:
    - [(i, true, false)] asserts [e_i <= k_i];
    - [(i, true, true)] asserts [e_i < k_i];
    - [(i, false, false)] asserts [e_i >= k_i] (negation of strict);
    - [(i, false, true)] asserts [e_i > k_i] (negation of non-strict).

    [Ok model] gives a value for each structural variable.  [Error l]
    gives the atom indices of an inconsistent subset. *)
