(** Integer difference logic.

    Decides conjunctions of constraints of the form [x - y <= k] over
    integer variables, by negative-cycle detection in the constraint
    graph (Bellman–Ford).  Constraints with a single variable are
    expressed against a distinguished "zero" variable by the caller.

    Each constraint carries a caller [tag]; on infeasibility the solver
    returns the tags of a negative cycle, which is a minimal
    inconsistent subset suitable for clause learning. *)

type constr = { x : int; y : int; k : int; tag : int }
(** The constraint [x - y <= k].  Variables are indices in [0, nvars). *)

val check : nvars:int -> constr list -> (int array, int list) result
(** [check ~nvars cs] is [Ok model] with [model.(v)] an integer
    assignment satisfying every constraint, or [Error tags] with [tags]
    the constraints of some negative cycle. *)

val check_many :
  nvars:int -> max_cores:int -> constr list -> (int array, int list list) result
(** Like {!check} but, on infeasibility, greedily collects up to
    [max_cores] edge-disjoint negative cycles (each a conflict core). *)
