(** Normalization of arithmetic terms into linear expressions
    [sum_i c_i * x_i + constant] over term variables. *)

type t = { coeffs : (Term.t * Exactnum.Rat.t) list; const : Exactnum.Rat.t }
(** Coefficients are non-zero and sorted by term id; variables appear
    at most once. *)

exception Nonlinear of Term.t

val of_term : Term.t -> t
(** @raise Nonlinear if the term contains a non-arithmetic subterm. *)

val sub : t -> t -> t

type int_diff = { x : Term.t option; y : Term.t option; k : int }
(** The constraint [x - y <= k] with either side possibly absent. *)

type classified =
  | Trivial of bool  (** the atom folds to a constant *)
  | Idl of int_diff  (** integer difference constraint *)
  | Lra of { coeffs : (Term.t * Exactnum.Rat.t) list; bound : Exactnum.Rat.t }
      (** rational constraint [sum <= bound] (strictness tracked by caller) *)

exception Not_difference_logic of Term.t * Term.t

val classify_leq : strict:bool -> Term.t -> Term.t -> classified
(** Normalize the atom [a <= b] (or [a < b] when [strict]).  Integer
    atoms are scaled to integer coefficients, tightened ([a < b] becomes
    [a <= b-1]) and must be difference-form.  Rational atoms are
    returned in a canonical scaled form; strict rational atoms are the
    caller's responsibility to track.

    @raise Not_difference_logic for an integer atom outside the
    difference fragment.
    @raise Nonlinear for non-linear operands. *)
