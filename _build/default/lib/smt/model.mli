(** Models produced by the solver, mapping term variables to values,
    plus a reference evaluator for arbitrary terms. *)

type value = Bool of bool | Int of int | Rat of Exactnum.Rat.t | Bv of int

type t

val create :
  bools:(Term.t * bool) list ->
  ints:(Term.t * int) list ->
  rats:(Term.t * Exactnum.Rat.t) list ->
  bvs:(Term.t * int) list ->
  t

val value_of : t -> Term.t -> value option
(** Value of a variable term; [None] if the variable is unknown to the
    model (it was irrelevant — any value satisfies). *)

val bool_value : t -> Term.t -> bool
(** Boolean variable's value, defaulting to [false] when irrelevant. *)

val int_value : t -> Term.t -> int
val rat_value : t -> Term.t -> Exactnum.Rat.t
val bv_value : t -> Term.t -> int

val eval : t -> Term.t -> value
(** Evaluate an arbitrary term under the model (unknown variables take
    default values: [false], [0]).  Useful for checking that a model
    satisfies an assertion, and for decoding counterexamples. *)

val eval_bool : t -> Term.t -> bool
(** [eval] specialized to Boolean terms. *)

val bindings : t -> (Term.t * value) list
val pp : Format.formatter -> t -> unit
