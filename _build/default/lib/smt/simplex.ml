module Rat = Exactnum.Rat

type atom = { coeffs : (int * Rat.t) list; bound : Rat.t }
type t = { nvars : int; atoms : atom array }

let create ~nvars atoms = { nvars; atoms }

(* Delta-rationals: (q, d) stands for q + d * epsilon. *)
type dr = { q : Rat.t; d : Rat.t }

let dr_zero = { q = Rat.zero; d = Rat.zero }
let dr_add a b = { q = Rat.add a.q b.q; d = Rat.add a.d b.d }
let dr_sub a b = { q = Rat.sub a.q b.q; d = Rat.sub a.d b.d }
let dr_scale c a = { q = Rat.mul c a.q; d = Rat.mul c a.d }

let dr_compare a b =
  let c = Rat.compare a.q b.q in
  if c <> 0 then c else Rat.compare a.d b.d

type bound = { value : dr; tag : int }

exception Conflict of int list

let check t ~assertions =
  let n = t.nvars in
  let m = Array.length t.atoms in
  let total = n + m in
  (* Tableau: one row per currently-basic variable.  Initially the slack
     variables (n .. n+m-1) are basic, with rows copying atom coefficients. *)
  let tableau = Array.make_matrix m total Rat.zero in
  let owner = Array.init m (fun r -> n + r) in
  let row_of = Array.make total (-1) in
  Array.iteri
    (fun r atom ->
      row_of.(n + r) <- r;
      List.iter
        (fun (v, c) ->
          if v < 0 || v >= n then invalid_arg "Simplex: variable out of range";
          tableau.(r).(v) <- Rat.add tableau.(r).(v) c)
        atom.coeffs)
    t.atoms;
  let beta = Array.make total dr_zero in
  let lower : bound option array = Array.make total None in
  let upper : bound option array = Array.make total None in
  let is_basic v = row_of.(v) >= 0 in
  (* Changing a nonbasic variable's value propagates through the rows. *)
  let update_nonbasic x v =
    let delta = dr_sub v beta.(x) in
    for r = 0 to m - 1 do
      let c = tableau.(r).(x) in
      if not (Rat.is_zero c) then beta.(owner.(r)) <- dr_add beta.(owner.(r)) (dr_scale c delta)
    done;
    beta.(x) <- v
  in
  let assert_upper x value tag =
    match upper.(x) with
    | Some b when dr_compare b.value value <= 0 -> ()
    | Some _ | None ->
      (match lower.(x) with
       | Some lb when dr_compare value lb.value < 0 -> raise (Conflict [ tag; lb.tag ])
       | Some _ | None ->
         upper.(x) <- Some { value; tag };
         if (not (is_basic x)) && dr_compare beta.(x) value > 0 then update_nonbasic x value)
  in
  let assert_lower x value tag =
    match lower.(x) with
    | Some b when dr_compare b.value value >= 0 -> ()
    | Some _ | None ->
      (match upper.(x) with
       | Some ub when dr_compare value ub.value > 0 -> raise (Conflict [ tag; ub.tag ])
       | Some _ | None ->
         lower.(x) <- Some { value; tag };
         if (not (is_basic x)) && dr_compare beta.(x) value < 0 then update_nonbasic x value)
  in
  (* Pivot basic variable b (in row r) with nonbasic variable j. *)
  let pivot b j =
    let r = row_of.(b) in
    let a_j = tableau.(r).(j) in
    assert (not (Rat.is_zero a_j));
    let inv = Rat.inv a_j in
    (* New row expresses j over the other variables (and b). *)
    let fresh = Array.make total Rat.zero in
    for k = 0 to total - 1 do
      if k <> j then fresh.(k) <- Rat.neg (Rat.mul inv tableau.(r).(k))
    done;
    fresh.(b) <- inv;
    tableau.(r) <- fresh;
    owner.(r) <- j;
    row_of.(j) <- r;
    row_of.(b) <- -1;
    (* Substitute j in all other rows. *)
    for r' = 0 to m - 1 do
      if r' <> r then begin
        let c = tableau.(r').(j) in
        if not (Rat.is_zero c) then begin
          tableau.(r').(j) <- Rat.zero;
          for k = 0 to total - 1 do
            if not (Rat.is_zero fresh.(k)) then
              tableau.(r').(k) <- Rat.add tableau.(r').(k) (Rat.mul c fresh.(k))
          done
        end
      end
    done
  in
  let pivot_and_update b j v =
    let r = row_of.(b) in
    let a_j = tableau.(r).(j) in
    let theta = dr_scale (Rat.inv a_j) (dr_sub v beta.(b)) in
    beta.(b) <- v;
    beta.(j) <- dr_add beta.(j) theta;
    for r' = 0 to m - 1 do
      if r' <> r then begin
        let c = tableau.(r').(j) in
        if not (Rat.is_zero c) then beta.(owner.(r')) <- dr_add beta.(owner.(r')) (dr_scale c theta)
      end
    done;
    pivot b j
  in
  (* Conflict explanation for an unbounded violated row. *)
  let explain_row r blame_tag ~increase =
    let tags = ref [ blame_tag ] in
    for k = 0 to total - 1 do
      let c = tableau.(r).(k) in
      if not (Rat.is_zero c) then begin
        let limiting =
          if (Rat.sign c > 0) = increase then upper.(k) else lower.(k)
        in
        match limiting with
        | Some b -> tags := b.tag :: !tags
        | None -> assert false
      end
    done;
    raise (Conflict !tags)
  in
  let rec main_loop fuel =
    if fuel = 0 then failwith "Simplex.check: fuel exhausted (non-termination bug)";
    (* Bland's rule: smallest violated basic variable. *)
    let violated = ref (-1) in
    let need_increase = ref false in
    for v = total - 1 downto 0 do
      if is_basic v then begin
        (match lower.(v) with
         | Some lb when dr_compare beta.(v) lb.value < 0 ->
           violated := v;
           need_increase := true
         | Some _ | None -> ());
        match upper.(v) with
        | Some ub when dr_compare beta.(v) ub.value > 0 ->
          violated := v;
          need_increase := false
        | Some _ | None -> ()
      end
    done;
    if !violated < 0 then ()
    else begin
      let b = !violated in
      let r = row_of.(b) in
      let target =
        if !need_increase then (Option.get lower.(b)).value else (Option.get upper.(b)).value
      in
      let blame = if !need_increase then (Option.get lower.(b)).tag else (Option.get upper.(b)).tag in
      (* Find entering variable (smallest index, Bland). *)
      let entering = ref (-1) in
      for k = total - 1 downto 0 do
        if not (is_basic k) then begin
          let c = tableau.(r).(k) in
          if not (Rat.is_zero c) then begin
            let can_move =
              if (Rat.sign c > 0) = !need_increase then
                (* increasing k raises beta(b) toward target *)
                match upper.(k) with
                | None -> true
                | Some ub -> dr_compare beta.(k) ub.value < 0
              else begin
                match lower.(k) with
                | None -> true
                | Some lb -> dr_compare beta.(k) lb.value > 0
              end
            in
            if can_move then entering := k
          end
        end
      done;
      if !entering < 0 then explain_row r blame ~increase:!need_increase
      else begin
        pivot_and_update b !entering target;
        main_loop (fuel - 1)
      end
    end
  in
  match
    List.iter
      (fun (i, positive, strict) ->
        if i < 0 || i >= m then invalid_arg "Simplex.check: atom index out of range";
        let slack = n + i in
        let k = t.atoms.(i).bound in
        if positive then
          (* e <= k, or e < k when strict *)
          assert_upper slack { q = k; d = (if strict then Rat.minus_one else Rat.zero) } i
        else
          (* negation: e >= k (of strict) or e > k (of non-strict) *)
          assert_lower slack { q = k; d = (if strict then Rat.zero else Rat.one) } i)
      assertions;
    main_loop 100_000
  with
  | () ->
    (* Pick a concrete epsilon small enough for all strict separations. *)
    let eps = ref Rat.one in
    let consider (value : dr) (bound : dr) ~is_upper =
      let value, bound = if is_upper then (value, bound) else (bound, value) in
      (* need value.q + value.d * eps <= bound.q + bound.d * eps *)
      let dq = Rat.sub bound.q value.q and dd = Rat.sub value.d bound.d in
      if Rat.sign dd > 0 && Rat.sign dq > 0 then eps := Rat.min !eps (Rat.div dq dd)
    in
    for v = 0 to total - 1 do
      (match upper.(v) with Some ub -> consider beta.(v) ub.value ~is_upper:true | None -> ());
      match lower.(v) with Some lb -> consider beta.(v) lb.value ~is_upper:false | None -> ()
    done;
    let model =
      Array.init n (fun v -> Rat.add beta.(v).q (Rat.mul beta.(v).d !eps))
    in
    Ok model
  | exception Conflict tags -> Error (List.sort_uniq compare tags)
