(** Growable arrays, used pervasively by the SAT core. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots; it is never returned by accessors. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** @raise Invalid_argument when empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val sort_in_place : ('a -> 'a -> int) -> 'a t -> unit
val swap_remove : 'a t -> int -> unit
(** [swap_remove v i] removes element [i] by swapping in the last element
    (constant time, does not preserve order). *)
