lib/smt/linexp.mli: Exactnum Term
