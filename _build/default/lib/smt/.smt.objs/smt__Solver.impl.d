lib/smt/solver.ml: Array Cnf Exactnum Idl_inc List Model Sat Simplex
