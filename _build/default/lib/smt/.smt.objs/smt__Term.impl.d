lib/smt/term.ml: Exactnum Format Hashtbl Int List Printf Set Sort Stdlib String
