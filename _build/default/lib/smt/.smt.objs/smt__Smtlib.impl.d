lib/smt/smtlib.ml: Buffer Exactnum Hashtbl List Printf Sort String Term
