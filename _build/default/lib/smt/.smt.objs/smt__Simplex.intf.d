lib/smt/simplex.mli: Exactnum
