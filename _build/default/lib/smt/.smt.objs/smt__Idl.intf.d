lib/smt/idl.mli:
