lib/smt/idl_inc.ml: Array List Queue Vec
