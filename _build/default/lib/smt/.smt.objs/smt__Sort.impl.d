lib/smt/sort.ml: Format Printf
