lib/smt/idl.ml: Array List Queue
