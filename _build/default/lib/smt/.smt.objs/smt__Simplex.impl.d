lib/smt/simplex.ml: Array Exactnum List Option
