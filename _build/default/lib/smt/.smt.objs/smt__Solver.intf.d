lib/smt/solver.mli: Model Term
