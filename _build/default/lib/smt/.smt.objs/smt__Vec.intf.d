lib/smt/vec.mli:
