lib/smt/idl_inc.mli:
