lib/smt/cnf.ml: Array Buffer Exactnum Hashtbl Linexp List Sat Sort Term
