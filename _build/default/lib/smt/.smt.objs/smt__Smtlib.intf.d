lib/smt/smtlib.mli: Term
