lib/smt/cnf.mli: Exactnum Sat Term
