lib/smt/model.ml: Exactnum Format Hashtbl List Sort Term
