lib/smt/model.mli: Exactnum Format Term
