lib/smt/sat.mli:
