lib/smt/linexp.ml: Exactnum Hashtbl Int List Map Sort Stdlib Term
