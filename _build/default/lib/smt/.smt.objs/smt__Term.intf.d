lib/smt/term.mli: Exactnum Format Sort
