(** Concrete control-plane simulator (the Batfish-style oracle).

    Runs a synchronous fixed-point computation of the routing protocols
    configured on every device — connected and static routes, OSPF
    (modelled as shortest paths over configured link costs), and BGP
    (eBGP and iBGP with route maps, communities, aggregation and route
    reflection) including route redistribution — under a concrete
    {!env}ironment: a set of external route announcements and a set of
    failed links.

    The result assigns every device its per-protocol and overall RIBs,
    from which the {!Dataplane} module derives forwarding behaviour. *)

type advertisement = {
  adv_prefix : Net.Prefix.t;
  adv_path_len : int;  (** AS-path length as announced by the peer *)
  adv_med : int;
  adv_communities : Net.Community.Set.t;
}

type env = {
  external_ads : (string * Net.Ipv4.t * advertisement) list;
      (** (device, configured neighbor ip, advertisement) *)
  failed_links : (string * string) list;  (** unordered internal pairs *)
}

val empty_env : env

type state

val run : ?max_rounds:int -> Config.Ast.network -> env -> state
(** Compute the stable state.  [max_rounds] defaults to a bound
    proportional to the network size; {!converged} reports whether a
    fixed point was actually reached. *)

val converged : state -> bool

val overall_rib : state -> string -> Route.t list
(** Best routes (all protocols merged, ECMP ties included) at a device,
    sorted by prefix. *)

val proto_rib : state -> string -> Config.Ast.protocol -> Route.t list

val lookup : state -> string -> Net.Ipv4.t -> Route.t list
(** Longest-prefix-match lookup: the FIB entries a packet to the given
    address would use at the device ([[]] = no route). *)

val external_peer_name : Net.Ipv4.t -> string
(** Canonical name used for an unresolved (external) BGP neighbor. *)
