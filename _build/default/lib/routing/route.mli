(** Concrete routes as computed by the {!Simulator}. *)

type action =
  | Receive  (** destination is locally attached; deliver *)
  | Forward of string  (** forward to an internal device *)
  | Forward_external of string  (** forward to an external peer (by name) *)
  | Discard  (** null route *)

type t = {
  prefix : Net.Prefix.t;
  proto : Config.Ast.protocol;
  ad : int;  (** administrative distance *)
  lp : int;  (** BGP local preference (default 100) *)
  metric : int;  (** IGP cost or AS-path length *)
  med : int;
  rid : int;  (** tie-break identifier of the advertising router *)
  bgp_internal : bool;
  as_path : int list;  (** traversed ASNs, most recent first (BGP only) *)
  communities : Net.Community.Set.t;
  action : action;
}

val compare_preference : t -> t -> int
(** Total preference order: negative when the first route is {e better}.
    Implements administrative distance, then the BGP decision process
    (local preference, AS-path length / metric, MED, eBGP-over-iBGP,
    router id), which degenerates to metric comparison for IGPs. *)

val equally_good : t -> t -> bool
(** Preference-equal ignoring the router-id tiebreak (multipath). *)

val pp : Format.formatter -> t -> unit
