module A = Config.Ast

type outcome =
  | Delivered of string
  | Left_network of string * string
  | No_route of string
  | Null_routed of string
  | Acl_denied of string * string
  | Forwarding_loop of string list

type trace = { outcome : outcome; path : string list }

(* The interface pair used when [d] forwards to [d2]. *)
let link_interfaces net d d2 =
  List.find_map
    (fun (local_if, peer, peer_if) -> if peer = d2 then Some (local_if, peer_if) else None)
    (Net.Topology.neighbors net.A.net_topology d)

let acl_check dev iface_name ~dir ip =
  match A.find_interface dev iface_name with
  | None -> None
  | Some i ->
    let acl_name = match dir with `In -> i.A.if_acl_in | `Out -> i.A.if_acl_out in
    (match acl_name with
     | None -> None
     | Some name ->
       (match A.find_acl dev name with
        | None -> None (* undefined ACL treated as permit *)
        | Some acl -> if A.acl_permits acl ip then None else Some name))

(* One forwarding step of a packet to [ip] currently at [d].  Multiple
   results when ECMP spreads the traffic. *)
let steps net state d ip =
  let routes = Simulator.lookup state d ip in
  match routes with
  | [] -> [ `Stop (No_route d) ]
  | routes ->
    List.map
      (fun (r : Route.t) ->
        match r.Route.action with
        | Route.Receive ->
          (* delivery passes the out-ACL of the attached interface *)
          (match A.find_device net d with
           | None -> `Stop (Delivered d)
           | Some dev ->
             let denied =
               List.find_map
                 (fun (i : A.interface) ->
                   match i.A.if_prefix with
                   | Some p when Net.Prefix.contains p ip ->
                     acl_check dev i.A.if_name ~dir:`Out ip
                   | Some _ | None -> None)
                 dev.A.dev_interfaces
             in
             (match denied with
              | Some acl -> `Stop (Acl_denied (d, acl))
              | None -> `Stop (Delivered d)))
        | Route.Discard -> `Stop (Null_routed d)
        | Route.Forward_external peer -> `Stop (Left_network (d, peer))
        | Route.Forward d2 ->
          (match A.find_device net d with
           | None -> `Stop (No_route d)
           | Some dev ->
             (match link_interfaces net d d2 with
              | None -> `Hop d2 (* no physical link recorded; forward logically *)
              | Some (out_if, in_if) ->
                (match acl_check dev out_if ~dir:`Out ip with
                 | Some acl -> `Stop (Acl_denied (d, acl))
                 | None ->
                   (match A.find_device net d2 with
                    | None -> `Hop d2
                    | Some dev2 ->
                      (match acl_check dev2 in_if ~dir:`In ip with
                       | Some acl -> `Stop (Acl_denied (d2, acl))
                       | None -> `Hop d2))))))
      routes

let rec walk net state d ip visited path =
  if List.mem d visited then [ { outcome = Forwarding_loop (List.rev (d :: path)); path = List.rev path } ]
  else begin
    let path = d :: path in
    let visited = d :: visited in
    List.concat_map
      (function
        | `Stop outcome -> [ { outcome; path = List.rev path } ]
        | `Hop d2 -> walk net state d2 ip visited path)
      (steps net state d ip)
  end

let trace_all net state ~src ~dst = walk net state src dst [] []

let trace net state ~src ~dst =
  (* deterministic: follow the first choice at every hop *)
  let rec go d visited path =
    if List.mem d visited then { outcome = Forwarding_loop (List.rev (d :: path)); path = List.rev path }
    else begin
      let path = d :: path in
      let visited = d :: visited in
      match steps net state d dst with
      | `Stop outcome :: _ -> { outcome; path = List.rev path }
      | `Hop d2 :: _ -> go d2 visited path
      | [] -> { outcome = No_route d; path = List.rev path }
    end
  in
  go src [] []

let reachable net state ~src ~dst =
  List.exists
    (fun t -> match t.outcome with Delivered _ | Left_network _ -> true | _ -> false)
    (trace_all net state ~src ~dst)

let pp_outcome fmt = function
  | Delivered d -> Format.fprintf fmt "delivered at %s" d
  | Left_network (d, p) -> Format.fprintf fmt "left network at %s via %s" d p
  | No_route d -> Format.fprintf fmt "no route at %s" d
  | Null_routed d -> Format.fprintf fmt "null-routed at %s" d
  | Acl_denied (d, acl) -> Format.fprintf fmt "denied by acl %s at %s" acl d
  | Forwarding_loop ds -> Format.fprintf fmt "loop: %s" (String.concat " -> " ds)

let pp_trace fmt t =
  Format.fprintf fmt "%s : %a" (String.concat " -> " t.path) pp_outcome t.outcome
