type action = Receive | Forward of string | Forward_external of string | Discard

type t = {
  prefix : Net.Prefix.t;
  proto : Config.Ast.protocol;
  ad : int;
  lp : int;
  metric : int;
  med : int;
  rid : int;
  bgp_internal : bool;
  as_path : int list;
  communities : Net.Community.Set.t;
  action : action;
}

(* Negative when [a] is preferred over [b]. *)
let compare_preference a b =
  let c = compare a.ad b.ad in
  if c <> 0 then c
  else begin
    let c = compare b.lp a.lp in
    if c <> 0 then c
    else begin
      let c = compare a.metric b.metric in
      if c <> 0 then c
      else begin
        let c = compare a.med b.med in
        if c <> 0 then c
        else begin
          let c = compare a.bgp_internal b.bgp_internal in
          (* false (eBGP) < true (iBGP): eBGP preferred *)
          if c <> 0 then c else compare a.rid b.rid
        end
      end
    end
  end

let equally_good a b =
  a.ad = b.ad && a.lp = b.lp && a.metric = b.metric && a.med = b.med
  && a.bgp_internal = b.bgp_internal

let pp_action fmt = function
  | Receive -> Format.pp_print_string fmt "receive"
  | Forward d -> Format.fprintf fmt "fwd %s" d
  | Forward_external n -> Format.fprintf fmt "fwd-ext %s" n
  | Discard -> Format.pp_print_string fmt "discard"

let pp fmt r =
  Format.fprintf fmt "%a [%s ad=%d lp=%d metric=%d med=%d%s] -> %a" Net.Prefix.pp r.prefix
    (Config.Ast.protocol_to_string r.proto)
    r.ad r.lp r.metric r.med
    (if r.bgp_internal then " ibgp" else "")
    pp_action r.action
