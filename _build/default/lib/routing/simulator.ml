module A = Config.Ast
module Prefix = Net.Prefix
module Ipv4 = Net.Ipv4
module Smap = Map.Make (String)

type advertisement = {
  adv_prefix : Prefix.t;
  adv_path_len : int;
  adv_med : int;
  adv_communities : Net.Community.Set.t;
}

type env = {
  external_ads : (string * Ipv4.t * advertisement) list;
  failed_links : (string * string) list;
}

let empty_env = { external_ads = []; failed_links = [] }

type device_rib = {
  connected : Route.t list Prefix.Map.t;
  static : Route.t list Prefix.Map.t;
  ospf : Route.t list Prefix.Map.t;
  bgp : Route.t list Prefix.Map.t;
  overall : Route.t list Prefix.Map.t;
}

type state = { ribs : device_rib Smap.t; converged : bool }

let converged s = s.converged
let external_peer_name ip = "peer:" ^ Ipv4.to_string ip

let proto_map rib = function
  | A.Pconnected -> rib.connected
  | A.Pstatic -> rib.static
  | A.Pospf -> rib.ospf
  | A.Pbgp -> rib.bgp

(* -- route map evaluation -------------------------------------------------------- *)

let match_cond dev (r : Route.t) = function
  | A.Match_prefix_list name ->
    (match A.find_prefix_list dev name with
     | Some pl -> A.prefix_list_permits pl r.prefix
     | None -> false)
  | A.Match_community c -> Net.Community.Set.mem c r.communities

let apply_sets (r : Route.t) sets =
  List.fold_left
    (fun (r : Route.t) -> function
      | A.Set_local_pref n -> { r with lp = n }
      | A.Set_metric n -> { r with metric = n }
      | A.Set_med n -> { r with med = n }
      | A.Set_community c -> { r with communities = Net.Community.Set.add c r.communities }
      | A.Delete_community c -> { r with communities = Net.Community.Set.remove c r.communities })
    r sets

(* First clause whose matches all hold wins; deny clause or no matching
   clause drops the route. *)
let apply_route_map dev name_opt (r : Route.t) =
  match name_opt with
  | None -> Some r
  | Some name ->
    (match A.find_route_map dev name with
     | None -> Some r (* referencing an undefined map treated as permit-all *)
     | Some rm ->
       let rec go = function
         | [] -> None
         | (cl : A.rm_clause) :: rest ->
           if List.for_all (match_cond dev r) cl.rm_matches then begin
             match cl.rm_action with
             | A.Permit -> Some (apply_sets r cl.rm_sets)
             | A.Deny -> None
           end
           else go rest
       in
       go rm.rm_clauses)

(* -- helpers ----------------------------------------------------------------------- *)

let link_failed env d1 d2 =
  List.exists (fun (a, b) -> (a = d1 && b = d2) || (a = d2 && b = d1)) env.failed_links

let adjacent topo d1 d2 = List.exists (fun (_, peer, _) -> peer = d2) (Net.Topology.neighbors topo d1)

let device_id devices name =
  let rec go i = function
    | [] -> 0
    | (d : A.device) :: rest -> if d.A.dev_name = name then i + 1 else go (i + 1) rest
  in
  go 0 devices

let best_of_candidates ~multipath candidates =
  (* Group by prefix, keep the most preferred route(s). *)
  let by_prefix =
    List.fold_left
      (fun m (r : Route.t) ->
        Prefix.Map.update r.prefix (function None -> Some [ r ] | Some l -> Some (r :: l)) m)
      Prefix.Map.empty candidates
  in
  Prefix.Map.map
    (fun routes ->
      let sorted = List.sort Route.compare_preference routes in
      match sorted with
      | [] -> []
      | best :: rest ->
        if multipath then best :: List.filter (Route.equally_good best) rest else [ best ])
    by_prefix

(* Interfaces of [dev] running BGP sessions to internal devices resolve via
   interface addressing; everything else is an external (symbolic) peer. *)
type session = {
  local : A.device;
  neighbor : A.bgp_neighbor;
  kind : [ `Ebgp_internal of string | `Ibgp of string | `External of string ];
}

let sessions_of net (dev : A.device) =
  match dev.A.dev_bgp with
  | None -> []
  | Some bgp ->
    List.map
      (fun (n : A.bgp_neighbor) ->
        match A.device_of_ip net n.A.nbr_ip with
        | Some d2 when d2.A.dev_name <> dev.A.dev_name ->
          let same_as =
            match d2.A.dev_bgp with Some b2 -> b2.A.bgp_asn = bgp.A.bgp_asn | None -> false
          in
          if same_as then { local = dev; neighbor = n; kind = `Ibgp d2.A.dev_name }
          else { local = dev; neighbor = n; kind = `Ebgp_internal d2.A.dev_name }
        | Some _ | None -> { local = dev; neighbor = n; kind = `External (external_peer_name n.A.nbr_ip) })
      bgp.A.bgp_neighbors

(* The session on [d2] whose neighbor IP belongs to [dev] (reverse direction). *)
let reverse_session net (d2 : A.device) (dev : A.device) =
  List.find_opt
    (fun s ->
      match s.kind with
      | `Ebgp_internal name | `Ibgp name -> name = dev.A.dev_name
      | `External _ -> false)
    (sessions_of net d2)

(* Longest-prefix match in an overall rib map. *)
let lookup_map overall ip =
  let best =
    Prefix.Map.fold
      (fun p routes acc ->
        if Prefix.contains p ip && routes <> [] then begin
          match acc with
          | Some (bp, _) when Prefix.length bp >= Prefix.length p -> acc
          | _ -> Some (p, routes)
        end
        else acc)
      overall None
  in
  match best with Some (_, routes) -> routes | None -> []

(* -- per-protocol candidate computation ---------------------------------------------- *)

let connected_routes (dev : A.device) =
  List.filter_map
    (fun (i : A.interface) ->
      match i.A.if_prefix with
      | Some p ->
        Some
          {
            Route.prefix = p;
            proto = A.Pconnected;
            ad = A.default_ad A.Pconnected;
            lp = 100;
            metric = 0;
            med = 0;
            rid = 0;
            bgp_internal = false;
            as_path = [];
            communities = Net.Community.Set.empty;
            action = Route.Receive;
          }
      | None -> None)
    dev.A.dev_interfaces

let static_routes net (dev : A.device) =
  List.map
    (fun (s : A.static_route) ->
      let action =
        match (s.A.st_next_hop, s.A.st_interface) with
        | None, Some _ -> Route.Discard
        | Some hop, _ ->
          (match A.device_of_ip net hop with
           | Some d2 when d2.A.dev_name <> dev.A.dev_name -> Route.Forward d2.A.dev_name
           | Some _ -> Route.Receive
           | None ->
             (* next hop outside the network: external if on a connected
                subnet, otherwise an unresolvable (black-hole) route *)
             if List.exists (fun p -> Prefix.contains p hop) (A.connected_prefixes dev) then
               Route.Forward_external (external_peer_name hop)
             else Route.Discard)
        | None, None -> Route.Discard
      in
      {
        Route.prefix = s.A.st_prefix;
        proto = A.Pstatic;
        ad = A.default_ad A.Pstatic;
        lp = 100;
        metric = 0;
        med = 0;
        rid = 0;
        bgp_internal = false;
        as_path = [];
        communities = Net.Community.Set.empty;
        action;
      })
    dev.A.dev_statics

(* OSPF neighbors: adjacent devices where both ends run OSPF on the
   connecting interfaces. *)
let ospf_neighbors net env (dev : A.device) =
  let topo = net.A.net_topology in
  let my_ospf_ifaces = A.ospf_interfaces dev in
  List.filter_map
    (fun (local_if, peer_name, peer_if) ->
      if link_failed env dev.A.dev_name peer_name then None
      else begin
        match A.find_device net peer_name with
        | None -> None
        | Some peer ->
          let local_ok = List.exists (fun (i : A.interface) -> i.A.if_name = local_if) my_ospf_ifaces in
          let peer_ok =
            List.exists (fun (i : A.interface) -> i.A.if_name = peer_if) (A.ospf_interfaces peer)
          in
          if local_ok && peer_ok then begin
            let cost =
              match A.find_interface dev local_if with Some i -> i.A.if_cost | None -> 1
            in
            Some (peer_name, cost)
          end
          else None
      end)
    (Net.Topology.neighbors topo dev.A.dev_name)

let ospf_candidates net env ribs (dev : A.device) =
  match dev.A.dev_ospf with
  | None -> []
  | Some ocfg ->
    (* own participating interface subnets *)
    let own =
      List.filter_map
        (fun (i : A.interface) ->
          match i.A.if_prefix with
          | Some p ->
            Some
              {
                Route.prefix = p;
                proto = A.Pospf;
                ad = A.default_ad A.Pospf;
                lp = 100;
                metric = 0;
                med = 0;
                rid = 0;
                bgp_internal = false;
                as_path = [];
                communities = Net.Community.Set.empty;
                action = Route.Receive;
              }
          | None -> None)
        (A.ospf_interfaces dev)
    in
    (* learned from neighbors *)
    let learned =
      List.concat_map
        (fun (peer_name, cost) ->
          match Smap.find_opt peer_name ribs with
          | None -> []
          | Some rib ->
            Prefix.Map.fold
              (fun _ routes acc ->
                List.fold_left
                  (fun acc (r : Route.t) ->
                    {
                      r with
                      Route.metric = r.metric + cost;
                      action = Route.Forward peer_name;
                      proto = A.Pospf;
                      ad = A.default_ad A.Pospf;
                    }
                    :: acc)
                  acc routes)
              rib.ospf [])
        (ospf_neighbors net env dev)
    in
    (* redistribution into OSPF *)
    let redist =
      List.concat_map
        (fun (rd : A.redistribute) ->
          match Smap.find_opt dev.A.dev_name ribs with
          | None -> []
          | Some rib ->
            Prefix.Map.fold
              (fun _ routes acc ->
                List.fold_left
                  (fun acc (r : Route.t) ->
                    {
                      r with
                      Route.proto = A.Pospf;
                      ad = A.default_ad A.Pospf;
                      metric = Option.value rd.A.rd_metric ~default:20;
                    }
                    :: acc)
                  acc routes)
              (proto_map rib rd.A.rd_from) [])
        ocfg.A.ospf_redistribute
    in
    own @ learned @ redist

let import_external_ads env devices (dev : A.device) =
  match dev.A.dev_bgp with
  | None -> []
  | Some bgp ->
    List.concat_map
      (fun (d, nbr_ip, ad) ->
        if d <> dev.A.dev_name then []
        else begin
          match
            List.find_opt (fun (n : A.bgp_neighbor) -> Ipv4.equal n.A.nbr_ip nbr_ip) bgp.A.bgp_neighbors
          with
          | None -> []
          | Some n ->
            let peer = external_peer_name nbr_ip in
            if link_failed env dev.A.dev_name peer then []
            else begin
              let r =
                {
                  Route.prefix = ad.adv_prefix;
                  proto = A.Pbgp;
                  ad = A.default_ad A.Pbgp;
                  lp = 100;
                  metric = ad.adv_path_len + 1;
                  med = ad.adv_med;
                  rid = 1000 + device_id devices dev.A.dev_name;
                  bgp_internal = false;
                  as_path = [ n.A.nbr_remote_as ];
                  communities = ad.adv_communities;
                  action = Route.Forward_external peer;
                }
              in
              match apply_route_map dev n.A.nbr_rm_in r with Some r -> [ r ] | None -> []
            end
        end)
      env.external_ads

let bgp_candidates net env ribs devices (dev : A.device) =
  match dev.A.dev_bgp with
  | None -> []
  | Some bgp ->
    let my_rib = Smap.find_opt dev.A.dev_name ribs in
    let my_rid = device_id devices dev.A.dev_name in
    (* network statements originate when another protocol provides them *)
    let originated =
      List.filter_map
        (fun p ->
          match my_rib with
          | None -> None
          | Some rib ->
            let candidates =
              List.concat_map
                (fun proto ->
                  match Prefix.Map.find_opt p (proto_map rib proto) with Some l -> l | None -> [])
                [ A.Pconnected; A.Pstatic; A.Pospf ]
            in
            (match candidates with
             | [] -> None
             | (under : Route.t) :: _ ->
               Some
                 {
                   Route.prefix = p;
                   proto = A.Pbgp;
                   ad = A.default_ad A.Pbgp;
                   lp = 100;
                   metric = 0;
                   med = 0;
                   rid = my_rid;
                   bgp_internal = false;
                   as_path = [];
                   communities = Net.Community.Set.empty;
                   action = under.action;
                 }))
        bgp.A.bgp_networks
    in
    (* aggregates originate when a strictly more-specific BGP route exists *)
    let aggregates =
      List.filter_map
        (fun (agg, _summary_only) ->
          match my_rib with
          | None -> None
          | Some rib ->
            let has_contributor =
              Prefix.Map.exists
                (fun p routes ->
                  routes <> [] && Prefix.length p > Prefix.length agg && Prefix.subset p agg)
                rib.bgp
            in
            if has_contributor then
              Some
                {
                  Route.prefix = agg;
                  proto = A.Pbgp;
                  ad = A.default_ad A.Pbgp;
                  lp = 100;
                  metric = 0;
                  med = 0;
                  rid = my_rid;
                  bgp_internal = false;
                  as_path = [];
                  communities = Net.Community.Set.empty;
                  action = Route.Discard;
                }
            else None)
        bgp.A.bgp_aggregates
    in
    let externals = import_external_ads env devices dev in
    (* routes from internal BGP sessions *)
    let internal =
      List.concat_map
        (fun s ->
          match s.kind with
          | `External _ -> []
          | `Ebgp_internal peer_name | `Ibgp peer_name ->
            let is_ibgp = match s.kind with `Ibgp _ -> true | _ -> false in
            if link_failed env dev.A.dev_name peer_name && not is_ibgp then []
            else begin
              match (A.find_device net peer_name, Smap.find_opt peer_name ribs) with
              | Some peer_dev, Some peer_rib ->
                let peer_bgp = Option.get peer_dev.A.dev_bgp in
                let rev = reverse_session net peer_dev dev in
                let out_map =
                  match rev with Some r -> r.neighbor.A.nbr_rm_out | None -> None
                in
                let peer_is_rr =
                  List.exists (fun (n : A.bgp_neighbor) -> n.A.nbr_rr_client) peer_bgp.A.bgp_neighbors
                in
                (* iBGP session viability: this device must be able to
                   reach the peer address through the current rib *)
                let session_up =
                  if not is_ibgp then adjacent net.A.net_topology dev.A.dev_name peer_name
                  else begin
                    match my_rib with
                    | None -> false
                    | Some rib ->
                      let routes = lookup_map rib.overall s.neighbor.A.nbr_ip in
                      List.exists
                        (fun (r : Route.t) ->
                          match r.Route.action with
                          | Route.Discard -> false
                          | Route.Receive | Route.Forward _ | Route.Forward_external _ -> true)
                        routes
                  end
                in
                if not session_up then []
                else begin
                  (* suppressed more-specifics under summary-only aggregates *)
                  let suppressed (r : Route.t) =
                    List.exists
                      (fun (agg, summary_only) ->
                        summary_only
                        && Prefix.length r.prefix > Prefix.length agg
                        && Prefix.subset r.prefix agg)
                      peer_bgp.A.bgp_aggregates
                  in
                  Prefix.Map.fold
                    (fun _ routes acc ->
                      List.fold_left
                        (fun acc (r : Route.t) ->
                          if suppressed r then acc
                          else begin
                            (* export rules at the peer *)
                            let exportable =
                              if not is_ibgp then true
                              else (not r.bgp_internal) || peer_is_rr
                            in
                            if not exportable then acc
                            else begin
                              let exported =
                                if is_ibgp then { r with Route.bgp_internal = true }
                                else
                                  {
                                    r with
                                    Route.metric = r.metric + 1;
                                    as_path = peer_bgp.A.bgp_asn :: r.as_path;
                                    bgp_internal = false;
                                    lp = 100;
                                    med = 0;
                                  }
                              in
                              if exported.metric > 255 then acc
                              else begin
                                match apply_route_map peer_dev out_map exported with
                                | None -> acc
                                | Some exported ->
                                  (* import side *)
                                  if
                                    (not is_ibgp)
                                    && List.mem bgp.A.bgp_asn exported.as_path
                                    && bgp.A.bgp_asn <> 0
                                  then acc (* AS loop *)
                                  else if is_ibgp && exported.rid = my_rid then acc
                                  else begin
                                    let imported =
                                      {
                                        exported with
                                        Route.ad =
                                          (if is_ibgp then A.ibgp_ad else A.default_ad A.Pbgp);
                                        action =
                                          (if is_ibgp then begin
                                             (* recursive lookup toward the peer *)
                                             match my_rib with
                                             | None -> Route.Forward peer_name
                                             | Some rib ->
                                               (match lookup_map rib.overall s.neighbor.A.nbr_ip with
                                                | { Route.action = Route.Forward h; _ } :: _ ->
                                                  Route.Forward h
                                                | { Route.action = Route.Receive; _ } :: _ ->
                                                  Route.Forward peer_name
                                                | _ -> Route.Forward peer_name)
                                           end
                                           else Route.Forward peer_name);
                                      }
                                    in
                                    match apply_route_map dev s.neighbor.A.nbr_rm_in imported with
                                    | None -> acc
                                    | Some r -> r :: acc
                                  end
                              end
                            end
                          end)
                        acc routes)
                    peer_rib.bgp []
                end
              | _ -> []
            end)
        (sessions_of net dev)
    in
    (* redistribution into BGP *)
    let redist =
      List.concat_map
        (fun (rd : A.redistribute) ->
          match my_rib with
          | None -> []
          | Some rib ->
            Prefix.Map.fold
              (fun _ routes acc ->
                List.fold_left
                  (fun acc (r : Route.t) ->
                    {
                      r with
                      Route.proto = A.Pbgp;
                      ad = A.default_ad A.Pbgp;
                      lp = 100;
                      metric = 0;
                      med = Option.value rd.A.rd_metric ~default:0;
                      rid = my_rid;
                      bgp_internal = false;
                      as_path = [];
                    }
                    :: acc)
                  acc routes)
              (proto_map rib rd.A.rd_from) [])
        bgp.A.bgp_redistribute
    in
    originated @ aggregates @ externals @ internal @ redist

(* -- fixpoint -------------------------------------------------------------------------- *)

let route_key (r : Route.t) =
  ( Prefix.to_string r.prefix,
    A.protocol_to_string r.proto,
    (r.ad, r.lp, r.metric, r.med, r.rid),
    r.bgp_internal,
    r.as_path,
    List.map Net.Community.to_string (Net.Community.Set.elements r.communities),
    match r.action with
    | Route.Receive -> "recv"
    | Route.Forward d -> "fwd:" ^ d
    | Route.Forward_external d -> "ext:" ^ d
    | Route.Discard -> "drop" )

let rib_key rib =
  let map_key m =
    Prefix.Map.bindings m
    |> List.map (fun (p, routes) -> (Prefix.to_string p, List.sort compare (List.map route_key routes)))
  in
  (map_key rib.connected, map_key rib.static, map_key rib.ospf, map_key rib.bgp)

let state_key ribs = Smap.bindings ribs |> List.map (fun (d, rib) -> (d, rib_key rib))

let overall_of ~multipath rib =
  let candidates =
    List.concat_map
      (fun m -> Prefix.Map.fold (fun _ routes acc -> routes @ acc) m [])
      [ rib.connected; rib.static; rib.ospf; rib.bgp ]
  in
  best_of_candidates ~multipath candidates

let run ?max_rounds (net : A.network) env =
  let devices = net.A.net_devices in
  let max_rounds =
    match max_rounds with Some n -> n | None -> (4 * List.length devices) + 16
  in
  let multipath_of (dev : A.device) =
    match dev.A.dev_bgp with Some b -> b.A.bgp_multipath | None -> true
    (* IGPs use ECMP by default *)
  in
  let step ribs =
    List.fold_left
      (fun acc (dev : A.device) ->
        let multipath = multipath_of dev in
        let connected = best_of_candidates ~multipath (connected_routes dev) in
        let static = best_of_candidates ~multipath (static_routes net dev) in
        let ospf = best_of_candidates ~multipath (ospf_candidates net env ribs dev) in
        let bgp = best_of_candidates ~multipath (bgp_candidates net env ribs devices dev) in
        let rib = { connected; static; ospf; bgp; overall = Prefix.Map.empty } in
        let rib = { rib with overall = overall_of ~multipath rib } in
        Smap.add dev.A.dev_name rib acc)
      Smap.empty devices
  in
  let rec iterate ribs round =
    let next = step ribs in
    if state_key next = state_key ribs then { ribs = next; converged = true }
    else if round >= max_rounds then { ribs = next; converged = false }
    else iterate next (round + 1)
  in
  iterate Smap.empty 0

let overall_rib s name =
  match Smap.find_opt name s.ribs with
  | None -> []
  | Some rib -> Prefix.Map.fold (fun _ routes acc -> acc @ routes) rib.overall []

let proto_rib s name proto =
  match Smap.find_opt name s.ribs with
  | None -> []
  | Some rib -> Prefix.Map.fold (fun _ routes acc -> acc @ routes) (proto_map rib proto) []

let lookup s name ip =
  match Smap.find_opt name s.ribs with None -> [] | Some rib -> lookup_map rib.overall ip
