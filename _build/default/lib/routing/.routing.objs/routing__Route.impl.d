lib/routing/route.ml: Config Format Net
