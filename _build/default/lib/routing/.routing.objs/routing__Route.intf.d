lib/routing/route.mli: Config Format Net
