lib/routing/simulator.mli: Config Net Route
