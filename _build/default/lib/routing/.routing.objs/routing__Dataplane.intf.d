lib/routing/dataplane.mli: Config Format Net Simulator
