lib/routing/dataplane.ml: Config Format List Net Route Simulator String
