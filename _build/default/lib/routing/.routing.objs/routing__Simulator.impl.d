lib/routing/simulator.ml: Config List Map Net Option Route String
