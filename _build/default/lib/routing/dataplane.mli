(** Concrete forwarding derived from a {!Simulator.state}: trace a
    packet hop by hop, applying interface ACLs, and classify the
    outcome. *)

type outcome =
  | Delivered of string  (** destination device (locally attached) *)
  | Left_network of string * string  (** last device, external peer *)
  | No_route of string  (** black hole: device had no matching FIB entry *)
  | Null_routed of string  (** matched a discard route *)
  | Acl_denied of string * string  (** device enforcing the ACL, ACL name *)
  | Forwarding_loop of string list  (** devices on the loop *)

type trace = { outcome : outcome; path : string list  (** devices visited in order *) }

val trace : Config.Ast.network -> Simulator.state -> src:string -> dst:Net.Ipv4.t -> trace
(** Follow the first (deterministic) ECMP choice at each hop. *)

val trace_all : Config.Ast.network -> Simulator.state -> src:string -> dst:Net.Ipv4.t -> trace list
(** Explore every ECMP branch; one trace per distinct forwarding path. *)

val reachable : Config.Ast.network -> Simulator.state -> src:string -> dst:Net.Ipv4.t -> bool
(** True when {e some} ECMP path delivers the packet (to an attached
    destination or out to an external peer when the destination lies
    beyond the network edge). *)

val pp_trace : Format.formatter -> trace -> unit
