(** Render configurations back to the surface syntax.

    [parse (print d)] yields a device equal to [d]; the printed form is
    also used to measure "lines of configuration" in the benchmarks. *)

val device_to_string : Ast.device -> string
val network_to_string : Ast.network -> string

val config_lines : Ast.device -> int
(** Number of non-blank, non-comment configuration lines. *)

val network_config_lines : Ast.network -> int
