(** Parser for the Cisco-flavoured configuration language.

    The language is line-oriented.  Top-level stanzas are introduced by
    [hostname], [interface], [router bgp], [router ospf], [route-map],
    and single-line commands ([ip prefix-list], [access-list],
    [ip route]).  Lines consisting of ['!'] or blanks are separators.

    A multi-device file contains several [hostname] stanzas; links
    between devices are inferred from interfaces sharing a subnet, or
    declared explicitly with [link <dev1> <if1> <dev2> <if2>] lines. *)

exception Parse_error of { line : int; message : string }

val parse_device : string -> Ast.device
(** Parse a single device configuration.
    @raise Parse_error on malformed input. *)

val parse_network : string -> Ast.network
(** Parse a multi-device configuration file; topology from explicit
    [link] lines plus subnet inference. *)

val infer_topology : Ast.device list -> Net.Topology.t
(** Link two devices whenever they own distinct addresses inside the
    same connected subnet. *)
