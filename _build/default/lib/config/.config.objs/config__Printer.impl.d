lib/config/printer.ml: Ast Buffer List Net Printf String
