lib/config/parser.ml: Ast List Net Printf String
