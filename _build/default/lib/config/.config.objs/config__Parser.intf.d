lib/config/parser.mli: Ast Net
