lib/config/ast.ml: List Net
