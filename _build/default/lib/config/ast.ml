(** Abstract syntax of device configurations.

    The surface syntax (see {!Parser} and {!Printer}) is a
    Cisco-flavoured, line-oriented language covering the features
    Minesweeper models: interfaces with addresses and ACLs, prefix
    lists, route maps (match / set), BGP (eBGP and iBGP, route
    reflectors, networks, aggregates, redistribution, multipath), OSPF,
    static routes and connected routes. *)

type action = Permit | Deny

(** One [ip prefix-list] entry: match a prefix against [pl_prefix]'s
    first [length pl_prefix] bits, with the prefix length within
    [ge..le] (defaults: exactly [length pl_prefix]). *)
type prefix_list_entry = {
  pl_action : action;
  pl_prefix : Net.Prefix.t;
  pl_ge : int option;
  pl_le : int option;
}

type prefix_list = { pl_name : string; pl_entries : prefix_list_entry list }

(** Data-plane ACL entry matching on the destination address. *)
type acl_entry = { acl_action : action; acl_dst : Net.Prefix.t }

type acl = { acl_name : string; acl_entries : acl_entry list }

type match_cond =
  | Match_prefix_list of string
  | Match_community of Net.Community.t

type set_action =
  | Set_local_pref of int
  | Set_metric of int
  | Set_med of int
  | Set_community of Net.Community.t
  | Delete_community of Net.Community.t

type rm_clause = {
  rm_seq : int;
  rm_action : action;
  rm_matches : match_cond list;
  rm_sets : set_action list;
}

type route_map = { rm_name : string; rm_clauses : rm_clause list }

type interface = {
  if_name : string;
  if_prefix : Net.Prefix.t option;  (** address and mask; the connected subnet *)
  if_ip : Net.Ipv4.t option;  (** the interface's own address *)
  if_acl_in : string option;  (** ACL applied to packets arriving here *)
  if_acl_out : string option;  (** ACL applied to packets sent out here *)
  if_cost : int;  (** OSPF link cost (default 1) *)
}

type protocol = Pconnected | Pstatic | Pospf | Pbgp

type redistribute = { rd_from : protocol; rd_metric : int option }

type bgp_neighbor = {
  nbr_ip : Net.Ipv4.t;
  nbr_remote_as : int;
  nbr_rm_in : string option;
  nbr_rm_out : string option;
  nbr_rr_client : bool;
}

type bgp_config = {
  bgp_asn : int;
  bgp_router_id : Net.Ipv4.t option;
  bgp_networks : Net.Prefix.t list;
  bgp_neighbors : bgp_neighbor list;
  bgp_redistribute : redistribute list;
  bgp_multipath : bool;
  bgp_aggregates : (Net.Prefix.t * bool) list;  (** prefix, summary-only *)
}

type ospf_config = {
  ospf_networks : Net.Prefix.t list;
      (** interfaces whose address falls inside one of these participate *)
  ospf_redistribute : redistribute list;
}

type static_route = {
  st_prefix : Net.Prefix.t;
  st_next_hop : Net.Ipv4.t option;
  st_interface : string option;  (** [Some "Null0"] encodes a discard route *)
}

type device = {
  dev_name : string;
  dev_interfaces : interface list;
  dev_prefix_lists : prefix_list list;
  dev_route_maps : route_map list;
  dev_acls : acl list;
  dev_bgp : bgp_config option;
  dev_ospf : ospf_config option;
  dev_statics : static_route list;
}

type network = { net_devices : device list; net_topology : Net.Topology.t }

(* -- accessors and small helpers --------------------------------------------- *)

let empty_device name =
  {
    dev_name = name;
    dev_interfaces = [];
    dev_prefix_lists = [];
    dev_route_maps = [];
    dev_acls = [];
    dev_bgp = None;
    dev_ospf = None;
    dev_statics = [];
  }

let empty_bgp asn =
  {
    bgp_asn = asn;
    bgp_router_id = None;
    bgp_networks = [];
    bgp_neighbors = [];
    bgp_redistribute = [];
    bgp_multipath = false;
    bgp_aggregates = [];
  }

let empty_ospf = { ospf_networks = []; ospf_redistribute = [] }

let find_device net name = List.find_opt (fun d -> d.dev_name = name) net.net_devices
let find_interface dev name = List.find_opt (fun i -> i.if_name = name) dev.dev_interfaces
let find_route_map dev name = List.find_opt (fun rm -> rm.rm_name = name) dev.dev_route_maps

let find_prefix_list dev name =
  List.find_opt (fun pl -> pl.pl_name = name) dev.dev_prefix_lists

let find_acl dev name = List.find_opt (fun a -> a.acl_name = name) dev.dev_acls

(** The device (if any) owning the interface numbered [ip]. *)
let device_of_ip net ip =
  List.find_opt
    (fun d ->
      List.exists (fun i -> match i.if_ip with Some a -> Net.Ipv4.equal a ip | None -> false)
        d.dev_interfaces)
    net.net_devices

(** Interfaces participating in OSPF on this device. *)
let ospf_interfaces dev =
  match dev.dev_ospf with
  | None -> []
  | Some o ->
    List.filter
      (fun i ->
        match i.if_ip with
        | None -> false
        | Some ip -> List.exists (fun net -> Net.Prefix.contains net ip) o.ospf_networks)
      dev.dev_interfaces

(** All connected subnets of a device. *)
let connected_prefixes dev =
  List.filter_map (fun i -> i.if_prefix) dev.dev_interfaces

(** Whether a prefix-list entry matches a given prefix. *)
let prefix_list_entry_matches e (p : Net.Prefix.t) =
  let plen = Net.Prefix.length p in
  let base = Net.Prefix.length e.pl_prefix in
  let ge, le =
    match (e.pl_ge, e.pl_le) with
    | None, None -> (base, base)
    | Some g, None -> (g, 32)
    | None, Some l -> (base, l)
    | Some g, Some l -> (g, l)
  in
  plen >= ge && plen <= le && Net.Prefix.contains e.pl_prefix (Net.Prefix.network p)

(** First-match semantics; an empty or exhausted list denies. *)
let prefix_list_permits pl p =
  let rec go = function
    | [] -> false
    | e :: rest -> if prefix_list_entry_matches e p then e.pl_action = Permit else go rest
  in
  go pl.pl_entries

(** First-match semantics for ACLs on a destination address; default deny. *)
let acl_permits acl ip =
  let rec go = function
    | [] -> false
    | e :: rest -> if Net.Prefix.contains e.acl_dst ip then e.acl_action = Permit else go rest
  in
  go acl.acl_entries

let protocol_to_string = function
  | Pconnected -> "connected"
  | Pstatic -> "static"
  | Pospf -> "ospf"
  | Pbgp -> "bgp"

let protocol_of_string = function
  | "connected" -> Some Pconnected
  | "static" -> Some Pstatic
  | "ospf" -> Some Pospf
  | "bgp" -> Some Pbgp
  | _ -> None

(** Default administrative distances (Cisco values). *)
let default_ad = function Pconnected -> 0 | Pstatic -> 1 | Pospf -> 110 | Pbgp -> 20
let ibgp_ad = 200
