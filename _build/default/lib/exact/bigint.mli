(** Arbitrary-precision signed integers.

    A small, dependency-free bignum sufficient for the exact-rational
    simplex in [Smt.Simplex].  Values are immutable.  Representation is
    sign + magnitude in base 2{^30}. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_float : t -> float

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [|r| < |b|] and [r]
    carrying the sign of [a] (truncated division).
    @raise Division_by_zero when [b] is zero. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd 0 0 = 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val of_string : string -> t
(** Decimal, optionally preceded by ['-'].
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
