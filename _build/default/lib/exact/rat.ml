(* Invariant: den > 0 and gcd (|num|, den) = 1 (with num = 0 => den = 1). *)

type t = { num : Bigint.t; den : Bigint.t }

let normalize num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    let num, _ = Bigint.divmod num g in
    let den, _ = Bigint.divmod den g in
    { num; den }
  end

let make num den = normalize num den
let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = normalize (Bigint.of_int n) (Bigint.of_int d)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num t = t.num
let den t = t.den
let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let add a b =
  normalize
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = normalize (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = normalize (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)
let inv a = normalize a.den a.num

let compare a b = Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)
let equal a b = compare a b = 0
let leq a b = compare a b <= 0
let lt a b = compare a b < 0
let geq a b = compare a b >= 0
let gt a b = compare a b > 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

let to_float t = Bigint.to_float t.num /. Bigint.to_float t.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    make
      (Bigint.of_string (String.sub s 0 i))
      (Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)))
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let whole = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       let negative = String.length whole > 0 && whole.[0] = '-' in
       let scale =
         let rec pow acc n = if n = 0 then acc else pow (Bigint.mul acc (Bigint.of_int 10)) (n - 1) in
         pow Bigint.one (String.length frac)
       in
       let whole_part = if whole = "" || whole = "-" then Bigint.zero else Bigint.of_string whole in
       let frac_part = if frac = "" then Bigint.zero else Bigint.of_string frac in
       let mag = Bigint.add (Bigint.mul (Bigint.abs whole_part) scale) frac_part in
       make (if negative then Bigint.neg mag else mag) scale)

let to_string t =
  if Bigint.equal t.den Bigint.one then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)
