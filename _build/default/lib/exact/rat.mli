(** Exact rational numbers built on {!Bigint}.

    Values are kept normalized: the denominator is positive and the
    numerator/denominator pair is in lowest terms. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints n d] is the rational n/d. @raise Division_by_zero if [d = 0]. *)

val of_bigint : Bigint.t -> t
val make : Bigint.t -> Bigint.t -> t
(** [make num den]. @raise Division_by_zero if [den] is zero. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val sign : t -> int
val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val leq : t -> t -> bool
val lt : t -> t -> bool
val geq : t -> t -> bool
val gt : t -> t -> bool

val to_float : t -> float
val of_string : string -> t
(** Accepts ["n"], ["-n"], ["n/d"] and decimal notation ["a.b"]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
