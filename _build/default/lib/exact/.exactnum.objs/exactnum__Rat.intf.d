lib/exact/rat.mli: Bigint Format
