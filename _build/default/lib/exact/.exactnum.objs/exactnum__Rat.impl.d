lib/exact/rat.ml: Bigint Format String
