(* Sign-magnitude bignum, base 2^30 little-endian.  Invariants:
   - [mag] has no leading (most-significant) zero limbs;
   - [sign = 0] iff [mag] is empty; otherwise [sign] is [-1] or [1]. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int negation overflows; go through the absolute value limb by
       limb using the sign-aware remainder instead. *)
    let rec limbs n acc =
      if n = 0 then acc
      else limbs (n / base) ((abs (n mod base)) :: acc)
    in
    let l = List.rev (limbs n []) in
    { sign; mag = Array.of_list l }
  end

let one = of_int 1
let minus_one = of_int (-1)
let sign t = t.sign
let is_zero t = t.sign = 0

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* Requires |a| >= |b|. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai * bj <= (2^30-1)^2 < 2^60; fits in a 63-bit int with carry. *)
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    r
  end

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (mag_add x.mag y.mag)
  else begin
    match mag_compare x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> normalize x.sign (mag_sub x.mag y.mag)
    | _ -> normalize y.sign (mag_sub y.mag x.mag)
  end

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let sub x y = add x (neg y)
let abs x = if x.sign < 0 then neg x else x

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else normalize (x.sign * y.sign) (mag_mul x.mag y.mag)

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then mag_compare x.mag y.mag
  else mag_compare y.mag x.mag

let equal x y = compare x y = 0

let hash t =
  Array.fold_left (fun acc limb -> (acc * 31) + limb) t.sign t.mag land max_int

let nbits mag =
  let l = Array.length mag in
  if l = 0 then 0
  else begin
    let top = mag.(l - 1) in
    let rec width n = if top lsr n = 0 then n else width (n + 1) in
    ((l - 1) * base_bits) + width 1
  end

let get_bit mag i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length mag then 0 else (mag.(limb) lsr off) land 1

(* Binary long division of magnitudes: returns (quotient, remainder). *)
let mag_divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  let n = nbits a in
  let q = Array.make (max 1 (Array.length a)) 0 in
  (* Mutable remainder held in a growable buffer of limbs. *)
  let r = Array.make (Array.length b + 1) 0 in
  let rlen = ref 0 in
  let r_shift_add_bit bit =
    (* r := r*2 + bit *)
    let carry = ref bit in
    for i = 0 to !rlen - 1 do
      let v = (r.(i) lsl 1) lor !carry in
      r.(i) <- v land base_mask;
      carry := v lsr base_bits
    done;
    if !carry <> 0 then begin
      r.(!rlen) <- !carry;
      incr rlen
    end
  in
  let r_geq_b () =
    let lb = Array.length b in
    if !rlen <> lb then !rlen > lb
    else begin
      let rec go i = if i < 0 then true else if r.(i) <> b.(i) then r.(i) > b.(i) else go (i - 1) in
      go (lb - 1)
    end
  in
  let r_sub_b () =
    let lb = Array.length b in
    let borrow = ref 0 in
    for i = 0 to !rlen - 1 do
      let d = r.(i) - (if i < lb then b.(i) else 0) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    while !rlen > 0 && r.(!rlen - 1) = 0 do
      decr rlen
    done
  in
  for i = n - 1 downto 0 do
    r_shift_add_bit (get_bit a i);
    if r_geq_b () then begin
      r_sub_b ();
      q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
    end
  done;
  (q, Array.sub r 0 !rlen)

let divmod x y =
  if y.sign = 0 then raise Division_by_zero;
  if x.sign = 0 then (zero, zero)
  else begin
    let q, r = mag_divmod x.mag y.mag in
    (normalize (x.sign * y.sign) q, normalize x.sign r)
  end

let rec gcd x y =
  let x = abs x and y = abs y in
  if is_zero y then x
  else begin
    let _, r = divmod x y in
    gcd y r
  end

let to_int_opt t =
  (* A native int holds at most 3 limbs (62 bits > 60), so accumulate and
     watch for overflow via float-free bounds checks. *)
  let l = Array.length t.mag in
  if l = 0 then Some 0
  else if l > 3 then None
  else begin
    let v = ref 0 in
    let ok = ref true in
    for i = l - 1 downto 0 do
      if !v > (max_int - t.mag.(i)) lsr base_bits then ok := false
      else v := (!v lsl base_bits) lor t.mag.(i)
    done;
    if not !ok then None
    else if t.sign >= 0 then Some !v
    else Some (- !v)
  end

let to_float t =
  let m = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) t.mag 0.0 in
  if t.sign < 0 then -.m else m

let ten_pow_9 = of_int 1_000_000_000

let to_string t =
  if is_zero t then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks v acc =
      if is_zero v then acc
      else begin
        let q, r = divmod v ten_pow_9 in
        let r = match to_int_opt r with Some n -> n | None -> assert false in
        chunks q (r :: acc)
      end
    in
    (match chunks (abs t) [] with
     | [] -> assert false
     | first :: rest ->
       if t.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative then 1 else 0 in
  if start >= len then invalid_arg "Bigint.of_string: missing digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' -> acc := add (mul !acc ten) (of_int (Char.code s.[i] - Char.code '0'))
    | c -> invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c)
  done;
  if negative then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)
