(** BGP community values, written ["asn:value"]. *)

type t = { asn : int; value : int }

val make : int -> int -> t
val of_string : string -> t
(** @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

module Set : Set.S with type elt = t
