type t = int

let zero = 0
let max = (1 lsl 32) - 1

let of_octets a b c d =
  let check o = if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: octet out of range" in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
    (try
       let parse x =
         if x = "" || String.exists (fun ch -> ch < '0' || ch > '9') x then raise Exit
         else int_of_string x
       in
       let a = parse a and b = parse b and c = parse c and d = parse d in
       if a > 255 || b > 255 || c > 255 || d > 255 then None else Some (of_octets a b c d)
     with Exit | Failure _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some ip -> ip
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let octet ip i =
  if i < 0 || i > 3 then invalid_arg "Ipv4.octet";
  (ip lsr ((3 - i) * 8)) land 0xff

let to_string ip = Printf.sprintf "%d.%d.%d.%d" (octet ip 0) (octet ip 1) (octet ip 2) (octet ip 3)
let pp fmt ip = Format.pp_print_string fmt (to_string ip)
let compare = Stdlib.compare
let equal = Int.equal
