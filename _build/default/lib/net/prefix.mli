(** IPv4 prefixes in CIDR notation. *)

type t = private { network : Ipv4.t; length : int }
(** [network] is always masked to [length] bits. *)

val make : Ipv4.t -> int -> t
(** [make addr len] masks [addr] to [len] bits.
    @raise Invalid_argument if [len] is outside [0, 32]. *)

val of_string : string -> t
(** ["10.0.0.0/24"]. @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

val network : t -> Ipv4.t
val length : t -> int

val first : t -> Ipv4.t
(** First address covered (the network address). *)

val last : t -> Ipv4.t
(** Last address covered (the broadcast address). *)

val contains : t -> Ipv4.t -> bool
val subset : t -> t -> bool
(** [subset p q] is true when every address of [p] is in [q]. *)

val overlaps : t -> t -> bool

val host : Ipv4.t -> t
(** The /32 prefix of a single address. *)

val supernet : t -> int -> t
(** [supernet p len] truncates [p] to the shorter length [len].
    @raise Invalid_argument if [len > length p]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
