type t = { asn : int; value : int }

let make asn value =
  if asn < 0 || asn > 0xffff || value < 0 || value > 0xffff then
    invalid_arg "Community.make: out of range";
  { asn; value }

let of_string_opt s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
    let a = String.sub s 0 i and v = String.sub s (i + 1) (String.length s - i - 1) in
    (match (int_of_string_opt a, int_of_string_opt v) with
     | Some a, Some v when a >= 0 && a <= 0xffff && v >= 0 && v <= 0xffff ->
       Some { asn = a; value = v }
     | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Community.of_string: %S" s)

let to_string c = Printf.sprintf "%d:%d" c.asn c.value
let pp fmt c = Format.pp_print_string fmt (to_string c)
let compare a b = Stdlib.compare (a.asn, a.value) (b.asn, b.value)
let equal a b = compare a b = 0

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
