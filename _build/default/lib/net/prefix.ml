type t = { network : Ipv4.t; length : int }

let mask_of_length len = if len = 0 then 0 else (Ipv4.max lsr (32 - len)) lsl (32 - len)

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  { network = addr land mask_of_length len; length = len }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> None
  | Some i ->
    let addr = String.sub s 0 i in
    let len = String.sub s (i + 1) (String.length s - i - 1) in
    (match (Ipv4.of_string_opt addr, int_of_string_opt len) with
     | Some addr, Some len when len >= 0 && len <= 32 -> Some (make addr len)
     | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.network) p.length
let pp fmt p = Format.pp_print_string fmt (to_string p)
let compare a b = Stdlib.compare (a.network, a.length) (b.network, b.length)
let equal a b = compare a b = 0
let network p = p.network
let length p = p.length
let first p = p.network
let last p = p.network lor (Ipv4.max lsr p.length)
let contains p ip = ip land mask_of_length p.length = p.network
let subset p q = q.length <= p.length && contains q p.network
let overlaps p q = subset p q || subset q p
let host ip = make ip 32

let supernet p len =
  if len > p.length then invalid_arg "Prefix.supernet: longer than prefix";
  make p.network len

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
