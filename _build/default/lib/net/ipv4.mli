(** IPv4 addresses, represented as integers in [0, 2^32). *)

type t = int

val zero : t
val max : t

val of_octets : int -> int -> int -> int -> t
(** @raise Invalid_argument if any octet is outside [0, 255]. *)

val of_string : string -> t
(** Dotted-quad notation. @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool

val octet : t -> int -> int
(** [octet ip i] is the [i]-th octet, 0 being the most significant. *)
