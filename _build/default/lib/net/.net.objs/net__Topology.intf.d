lib/net/topology.mli:
