lib/net/topology.ml: List Map String
