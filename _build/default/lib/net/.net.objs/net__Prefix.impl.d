lib/net/prefix.ml: Format Ipv4 Map Printf Set Stdlib String
