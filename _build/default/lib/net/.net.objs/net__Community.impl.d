lib/net/community.ml: Format Printf Set Stdlib String
