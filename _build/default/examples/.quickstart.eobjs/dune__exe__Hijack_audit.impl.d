examples/hijack_audit.ml: Array Config Generators List Minesweeper Net Printf Sys
