examples/quickstart.mli:
