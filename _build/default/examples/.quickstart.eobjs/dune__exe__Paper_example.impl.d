examples/paper_example.ml: Config List Minesweeper Net Printf Smt
