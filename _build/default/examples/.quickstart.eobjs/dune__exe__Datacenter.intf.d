examples/datacenter.mli:
