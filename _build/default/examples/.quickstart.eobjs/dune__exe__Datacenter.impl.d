examples/datacenter.ml: Array Config Generators List Minesweeper Net Printf String Sys Unix
