examples/quickstart.ml: Config List Minesweeper Net Printf
