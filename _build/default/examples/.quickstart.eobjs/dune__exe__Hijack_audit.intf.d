examples/hijack_audit.mli:
