(* Simulator and dataplane tests on small hand-built networks. *)

module A = Config.Ast
module Sim = Routing.Simulator
module Dp = Routing.Dataplane
module Route = Routing.Route
module Ip = Net.Ipv4
module P = Net.Prefix

let parse = Config.Parser.parse_network
let run ?(env = Sim.empty_env) net = Sim.run net env

let ip = Ip.of_string

let has_route routes pfx proto =
  List.exists
    (fun (r : Route.t) -> P.equal r.Route.prefix (P.of_string pfx) && r.Route.proto = proto)
    routes

(* -- two routers exchanging routes over OSPF ----------------------------------- *)

let ospf_pair =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface e1
 ip address 10.1.0.1/24
router ospf 1
 network 0.0.0.0/0
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 10.2.0.1/24
router ospf 1
 network 0.0.0.0/0
|}

let test_ospf_pair () =
  let net = parse ospf_pair in
  let st = run net in
  Alcotest.(check bool) "converged" true (Sim.converged st);
  Alcotest.(check bool) "R1 learns 10.2/24" true (has_route (Sim.overall_rib st "R1") "10.2.0.0/24" A.Pospf);
  Alcotest.(check bool) "R2 learns 10.1/24" true (has_route (Sim.overall_rib st "R2") "10.1.0.0/24" A.Pospf);
  (* connected wins over ospf for own subnet *)
  let r1_own = Sim.lookup st "R1" (ip "10.1.0.5") in
  (match r1_own with
   | (r : Route.t) :: _ -> Alcotest.(check bool) "connected preferred" true (r.Route.proto = A.Pconnected)
   | [] -> Alcotest.fail "no route to own subnet");
  let t = Dp.trace net st ~src:"R1" ~dst:(ip "10.2.0.42") in
  (match t.Dp.outcome with
   | Dp.Delivered d -> Alcotest.(check string) "delivered at R2" "R2" d
   | _ -> Alcotest.failf "unexpected outcome: %s" (Format.asprintf "%a" Dp.pp_trace t));
  Alcotest.(check (list string)) "path" [ "R1"; "R2" ] t.Dp.path

(* -- OSPF triangle with costs and failures ----------------------------------------- *)

let ospf_triangle =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface e1
 ip address 192.168.13.1/30
 ip ospf cost 10
router ospf 1
 network 0.0.0.0/0
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 192.168.23.1/30
interface e2
 ip address 10.2.0.1/24
router ospf 1
 network 0.0.0.0/0
!
hostname R3
interface e0
 ip address 192.168.13.2/30
interface e1
 ip address 192.168.23.2/30
router ospf 1
 network 0.0.0.0/0
|}

let test_ospf_costs () =
  let net = parse ospf_triangle in
  let st = run net in
  (* R1 should prefer the direct cheap link to R2 (cost 1) over via R3 (10+1) *)
  let t = Dp.trace net st ~src:"R1" ~dst:(ip "10.2.0.9") in
  Alcotest.(check (list string)) "direct path" [ "R1"; "R2" ] t.Dp.path

let test_ospf_failover () =
  let net = parse ospf_triangle in
  let st = Sim.run net { Sim.empty_env with failed_links = [ ("R1", "R2") ] } in
  let t = Dp.trace net st ~src:"R1" ~dst:(ip "10.2.0.9") in
  Alcotest.(check (list string)) "detour via R3" [ "R1"; "R3"; "R2" ] t.Dp.path;
  (match t.Dp.outcome with
   | Dp.Delivered "R2" -> ()
   | _ -> Alcotest.fail "expected delivery after failover")

(* -- static routes -------------------------------------------------------------------- *)

let test_static_null_route () =
  let net =
    parse
      {|hostname R1
interface e0
 ip address 10.1.0.1/24
ip route 10.9.0.0/16 Null0
|}
  in
  let st = run net in
  let t = Dp.trace net st ~src:"R1" ~dst:(ip "10.9.1.1") in
  (match t.Dp.outcome with
   | Dp.Null_routed "R1" -> ()
   | _ -> Alcotest.fail "expected null route");
  let t2 = Dp.trace net st ~src:"R1" ~dst:(ip "10.77.0.1") in
  match t2.Dp.outcome with
  | Dp.No_route "R1" -> ()
  | _ -> Alcotest.fail "expected no route"

(* -- eBGP pair ------------------------------------------------------------------------- *)

let ebgp_pair =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface e1
 ip address 10.1.0.1/24
router bgp 100
 network 10.1.0.0/24
 neighbor 192.168.12.2 remote-as 200
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 10.2.0.1/24
router bgp 200
 network 10.2.0.0/24
 neighbor 192.168.12.1 remote-as 100
|}

let test_ebgp_pair () =
  let net = parse ebgp_pair in
  let st = run net in
  Alcotest.(check bool) "converged" true (Sim.converged st);
  let r1 = Sim.overall_rib st "R1" in
  Alcotest.(check bool) "R1 learns 10.2/24 via bgp" true (has_route r1 "10.2.0.0/24" A.Pbgp);
  let learned =
    List.find (fun (r : Route.t) -> P.equal r.Route.prefix (P.of_string "10.2.0.0/24")) r1
  in
  Alcotest.(check int) "as-path length 1" 1 learned.Route.metric;
  Alcotest.(check (list int)) "as path" [ 200 ] learned.Route.as_path;
  Alcotest.(check bool) "ebgp" false learned.Route.bgp_internal;
  let t = Dp.trace net st ~src:"R1" ~dst:(ip "10.2.0.77") in
  match t.Dp.outcome with
  | Dp.Delivered "R2" -> ()
  | _ -> Alcotest.fail "expected delivery"

(* -- external announcements and route maps --------------------------------------------- *)

let ebgp_external =
  {|hostname R1
interface e0
 ip address 192.168.100.1/30
interface e1
 ip address 192.168.200.1/30
interface e2
 ip address 10.1.0.1/24
ip prefix-list BLOCK deny 192.168.0.0/16 le 32
ip prefix-list BLOCK permit 0.0.0.0/0 le 32
route-map PREF_N1 permit 10
 match ip address prefix-list BLOCK
 set local-preference 120
router bgp 100
 network 10.1.0.0/24
 neighbor 192.168.100.2 remote-as 65001
 neighbor 192.168.100.2 route-map PREF_N1 in
 neighbor 192.168.200.2 remote-as 65002
|}

let announce prefix =
  {
    Sim.adv_prefix = P.of_string prefix;
    adv_path_len = 1;
    adv_med = 0;
    adv_communities = Net.Community.Set.empty;
  }

let test_external_preference () =
  let net = parse ebgp_external in
  (* both external peers announce the same destination *)
  let env =
    {
      Sim.empty_env with
      Sim.external_ads =
        [
          ("R1", ip "192.168.100.2", announce "8.8.8.0/24");
          ("R1", ip "192.168.200.2", announce "8.8.8.0/24");
        ];
    }
  in
  let st = Sim.run net env in
  let routes = Sim.lookup st "R1" (ip "8.8.8.8") in
  match routes with
  | (r : Route.t) :: _ ->
    Alcotest.(check int) "local-pref applied" 120 r.Route.lp;
    (match r.Route.action with
     | Route.Forward_external peer ->
       Alcotest.(check string) "prefers N1" (Sim.external_peer_name (ip "192.168.100.2")) peer
     | _ -> Alcotest.fail "expected external forward")
  | [] -> Alcotest.fail "no route"

let test_import_filter_blocks () =
  let net = parse ebgp_external in
  (* announcement matching the deny prefix-list never enters the RIB *)
  let env =
    {
      Sim.empty_env with
      Sim.external_ads = [ ("R1", ip "192.168.100.2", announce "192.168.50.0/24") ];
    }
  in
  let st = Sim.run net env in
  let bgp_routes =
    List.filter (fun (r : Route.t) -> r.Route.proto = A.Pbgp) (Sim.lookup st "R1" (ip "192.168.50.1"))
  in
  Alcotest.(check int) "announcement filtered out" 0 (List.length bgp_routes)

(* -- iBGP over an OSPF underlay ---------------------------------------------------------- *)

let ibgp_pair =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
interface e1
 ip address 192.168.100.1/30
router ospf 1
 network 192.168.12.0/24
router bgp 100
 neighbor 192.168.12.2 remote-as 100
 neighbor 192.168.100.2 remote-as 65001
!
hostname R2
interface e0
 ip address 192.168.12.2/30
interface e1
 ip address 10.2.0.1/24
router ospf 1
 network 192.168.12.0/24
router bgp 100
 neighbor 192.168.12.1 remote-as 100
|}

let test_ibgp () =
  let net = parse ibgp_pair in
  let env =
    {
      Sim.empty_env with
      Sim.external_ads = [ ("R1", ip "192.168.100.2", announce "8.8.8.0/24") ];
    }
  in
  let st = Sim.run net env in
  let r2 = Sim.lookup st "R2" (ip "8.8.8.8") in
  match r2 with
  | (r : Route.t) :: _ ->
    Alcotest.(check bool) "ibgp learned" true r.Route.bgp_internal;
    Alcotest.(check int) "ibgp ad" A.ibgp_ad r.Route.ad;
    (match r.Route.action with
     | Route.Forward "R1" -> ()
     | _ -> Alcotest.fail "expected forward toward R1");
    let t = Dp.trace net st ~src:"R2" ~dst:(ip "8.8.8.8") in
    (match t.Dp.outcome with
     | Dp.Left_network ("R1", _) -> ()
     | _ -> Alcotest.failf "expected to exit at R1, got %s" (Format.asprintf "%a" Dp.pp_trace t))
  | [] -> Alcotest.fail "R2 missing iBGP route"

(* -- ACLs ------------------------------------------------------------------------------------ *)

let acl_net =
  {|hostname R1
interface e0
 ip address 192.168.12.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname R2
interface e0
 ip address 192.168.12.2/30
 ip access-group BLOCK in
interface e1
 ip address 10.2.0.1/24
access-list BLOCK deny ip any 10.2.0.0 0.0.0.255
access-list BLOCK permit ip any any
router ospf 1
 network 0.0.0.0/0
|}

let test_acl_blocks () =
  let net = parse acl_net in
  let st = run net in
  let t = Dp.trace net st ~src:"R1" ~dst:(ip "10.2.0.5") in
  (match t.Dp.outcome with
   | Dp.Acl_denied ("R2", "BLOCK") -> ()
   | _ -> Alcotest.failf "expected acl denial, got %s" (Format.asprintf "%a" Dp.pp_trace t));
  Alcotest.(check bool) "not reachable" false (Dp.reachable net st ~src:"R1" ~dst:(ip "10.2.0.5"))

(* -- ECMP -------------------------------------------------------------------------------------- *)

let ecmp_net =
  {|hostname S
interface e0
 ip address 192.168.1.1/30
interface e1
 ip address 192.168.2.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname A
interface e0
 ip address 192.168.1.2/30
interface e1
 ip address 192.168.3.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname B
interface e0
 ip address 192.168.2.2/30
interface e1
 ip address 192.168.4.1/30
router ospf 1
 network 0.0.0.0/0
!
hostname T
interface e0
 ip address 192.168.3.2/30
interface e1
 ip address 192.168.4.2/30
interface e2
 ip address 10.9.0.1/24
router ospf 1
 network 0.0.0.0/0
|}

let test_ecmp () =
  let net = parse ecmp_net in
  let st = run net in
  let traces = Dp.trace_all net st ~src:"S" ~dst:(ip "10.9.0.3") in
  let paths = List.sort_uniq compare (List.map (fun t -> t.Dp.path) traces) in
  Alcotest.(check int) "two ecmp paths" 2 (List.length paths);
  List.iter
    (fun t ->
      match t.Dp.outcome with
      | Dp.Delivered "T" -> ()
      | _ -> Alcotest.fail "every branch delivers")
    traces

let () =
  Alcotest.run "routing"
    [
      ( "ospf",
        [
          Alcotest.test_case "pair" `Quick test_ospf_pair;
          Alcotest.test_case "costs" `Quick test_ospf_costs;
          Alcotest.test_case "failover" `Quick test_ospf_failover;
        ] );
      ("static", [ Alcotest.test_case "null route" `Quick test_static_null_route ]);
      ( "bgp",
        [
          Alcotest.test_case "ebgp pair" `Quick test_ebgp_pair;
          Alcotest.test_case "external preference" `Quick test_external_preference;
          Alcotest.test_case "import filter" `Quick test_import_filter_blocks;
          Alcotest.test_case "ibgp" `Quick test_ibgp;
        ] );
      ("dataplane", [ Alcotest.test_case "acl" `Quick test_acl_blocks; Alcotest.test_case "ecmp" `Quick test_ecmp ]);
    ]
