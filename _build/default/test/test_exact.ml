(* Unit and property tests for the exact-arithmetic substrate. *)

module B = Exactnum.Bigint
module Q = Exactnum.Rat

let check_b msg expected actual = Alcotest.(check string) msg expected (B.to_string actual)

let test_bigint_basic () =
  check_b "zero" "0" B.zero;
  check_b "of_int" "123456789" (B.of_int 123456789);
  check_b "neg" "-42" (B.of_int (-42));
  check_b "add" "300" (B.add (B.of_int 100) (B.of_int 200));
  check_b "add mixed" "-100" (B.add (B.of_int 100) (B.of_int (-200)));
  check_b "mul" "-600" (B.mul (B.of_int 30) (B.of_int (-20)));
  check_b "big mul" "1000000000000000000000000"
    (B.mul (B.of_string "1000000000000") (B.of_string "1000000000000"));
  Alcotest.(check int) "sign" (-1) (B.sign (B.of_int (-3)));
  Alcotest.(check bool) "equal" true (B.equal (B.of_int 7) (B.of_string "7"))

let test_bigint_divmod () =
  let q, r = B.divmod (B.of_int 17) (B.of_int 5) in
  check_b "17/5 q" "3" q;
  check_b "17/5 r" "2" r;
  let q, r = B.divmod (B.of_int (-17)) (B.of_int 5) in
  check_b "-17/5 q" "-3" q;
  check_b "-17/5 r" "-2" r;
  let big = B.of_string "123456789012345678901234567890" in
  let divisor = B.of_string "987654321" in
  let q, r = B.divmod big divisor in
  (* Verify the division identity and remainder bound rather than
     trusting transcribed digits. *)
  check_b "identity" (B.to_string big) (B.add (B.mul q divisor) r);
  Alcotest.(check bool) "remainder bound" true (B.compare (B.abs r) divisor < 0);
  Alcotest.(check bool) "q positive" true (B.sign q = 1)

let test_bigint_string_roundtrip () =
  List.iter
    (fun s -> check_b ("roundtrip " ^ s) s (B.of_string s))
    [ "0"; "1"; "-1"; "999999999999999999999999999999"; "-123456789123456789" ]

let test_bigint_gcd () =
  check_b "gcd" "6" (B.gcd (B.of_int 54) (B.of_int (-24)));
  check_b "gcd zero" "5" (B.gcd (B.of_int 0) (B.of_int 5));
  check_b "gcd both zero" "0" (B.gcd B.zero B.zero)

let test_to_int_opt () =
  Alcotest.(check (option int)) "small" (Some 42) (B.to_int_opt (B.of_int 42));
  Alcotest.(check (option int)) "negative" (Some (-42)) (B.to_int_opt (B.of_int (-42)));
  Alcotest.(check (option int))
    "max_int" (Some max_int)
    (B.to_int_opt (B.of_int max_int));
  Alcotest.(check (option int))
    "too big" None
    (B.to_int_opt (B.mul (B.of_int max_int) (B.of_int 2)))

let check_q msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let test_rat_basic () =
  check_q "normalize" "1/2" (Q.of_ints 2 4);
  check_q "neg den" "-1/2" (Q.of_ints 1 (-2));
  check_q "add" "5/6" (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "sub" "1/6" (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "mul" "1/6" (Q.mul (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "div" "3/2" (Q.div (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "int repr" "7" (Q.of_int 7);
  Alcotest.(check bool) "lt" true (Q.lt (Q.of_ints 1 3) (Q.of_ints 1 2));
  Alcotest.(check bool) "compare eq" true (Q.equal (Q.of_ints 3 9) (Q.of_ints 1 3))

let test_rat_of_string () =
  check_q "frac" "1/3" (Q.of_string "2/6");
  check_q "decimal" "5/4" (Q.of_string "1.25");
  check_q "neg decimal" "-5/4" (Q.of_string "-1.25");
  check_q "int" "17" (Q.of_string "17")

(* Property tests against native int arithmetic on small values. *)
let small_int = QCheck.int_range (-1_000_000) 1_000_000

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint add matches int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_opt (B.add (B.of_int a) (B.of_int b)) = Some (a + b))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint mul matches int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_opt (B.mul (B.of_int a) (B.of_int b)) = Some (a * b))

let prop_divmod_identity =
  QCheck.Test.make ~name:"divmod identity a = q*b + r" ~count:500
    (QCheck.pair small_int (QCheck.int_range 1 100000))
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.equal (B.of_int a) (B.add (B.mul q (B.of_int b)) r)
      && B.compare (B.abs r) (B.of_int b) < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint string roundtrip" ~count:300
    (QCheck.pair small_int small_int) (fun (a, b) ->
      let x = B.mul (B.of_int a) (B.mul (B.of_int b) (B.of_int 1_000_003)) in
      B.equal x (B.of_string (B.to_string x)))

let prop_rat_field =
  QCheck.Test.make ~name:"rat add/mul distribute" ~count:300
    (QCheck.triple small_int small_int (QCheck.int_range 1 1000))
    (fun (a, b, d) ->
      let qa = Q.of_ints a d and qb = Q.of_ints b d and qc = Q.of_ints 3 7 in
      Q.equal (Q.mul qc (Q.add qa qb)) (Q.add (Q.mul qc qa) (Q.mul qc qb)))

let () =
  Alcotest.run "exact"
    [
      ( "bigint",
        [
          Alcotest.test_case "basics" `Quick test_bigint_basic;
          Alcotest.test_case "divmod" `Quick test_bigint_divmod;
          Alcotest.test_case "string roundtrip" `Quick test_bigint_string_roundtrip;
          Alcotest.test_case "gcd" `Quick test_bigint_gcd;
          Alcotest.test_case "to_int_opt" `Quick test_to_int_opt;
        ] );
      ( "rat",
        [
          Alcotest.test_case "basics" `Quick test_rat_basic;
          Alcotest.test_case "of_string" `Quick test_rat_of_string;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_matches_int;
            prop_mul_matches_int;
            prop_divmod_identity;
            prop_string_roundtrip;
            prop_rat_field;
          ] );
    ]
