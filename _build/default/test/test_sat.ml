(* Tests for the CDCL SAT core, including a differential qcheck test
   against a brute-force enumerator on random small CNFs. *)

module S = Smt.Sat

let result = Alcotest.testable (fun fmt r -> Format.pp_print_string fmt (match r with S.Sat -> "sat" | S.Unsat -> "unsat")) ( = )

let fresh_vars s n = Array.init n (fun _ -> S.new_var s)

let test_trivial_sat () =
  let s = S.create () in
  let v = fresh_vars s 2 in
  S.add_clause s [ S.pos_lit v.(0); S.pos_lit v.(1) ];
  S.add_clause s [ S.neg_lit v.(0) ];
  Alcotest.check result "sat" S.Sat (S.solve s);
  Alcotest.(check bool) "v0 false" false (S.value_var s v.(0));
  Alcotest.(check bool) "v1 true" true (S.value_var s v.(1))

let test_trivial_unsat () =
  let s = S.create () in
  let v = fresh_vars s 1 in
  S.add_clause s [ S.pos_lit v.(0) ];
  S.add_clause s [ S.neg_lit v.(0) ];
  Alcotest.check result "unsat" S.Unsat (S.solve s)

let test_empty_clause () =
  let s = S.create () in
  let _ = fresh_vars s 1 in
  S.add_clause s [];
  Alcotest.check result "unsat" S.Unsat (S.solve s)

let test_no_clauses () =
  let s = S.create () in
  let _ = fresh_vars s 3 in
  Alcotest.check result "sat" S.Sat (S.solve s)

(* Pigeonhole: n+1 pigeons in n holes is unsatisfiable and needs real
   conflict-driven search, exercising learning and backjumping. *)
let pigeonhole n =
  let s = S.create () in
  let var = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> S.new_var s)) in
  for p = 0 to n do
    S.add_clause s (List.init n (fun h -> S.pos_lit var.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        S.add_clause s [ S.neg_lit var.(p1).(h); S.neg_lit var.(p2).(h) ]
      done
    done
  done;
  s

let test_pigeonhole () =
  for n = 2 to 6 do
    Alcotest.check result (Printf.sprintf "php %d" n) S.Unsat (S.solve (pigeonhole n))
  done

(* Graph-coloring style satisfiable instance with many propagations. *)
let test_chain_implications () =
  let s = S.create () in
  let n = 200 in
  let v = fresh_vars s n in
  for i = 0 to n - 2 do
    S.add_clause s [ S.neg_lit v.(i); S.pos_lit v.(i + 1) ]
  done;
  S.add_clause s [ S.pos_lit v.(0) ];
  Alcotest.check result "sat" S.Sat (S.solve s);
  for i = 0 to n - 1 do
    if not (S.value_var s v.(i)) then Alcotest.failf "var %d should be true" i
  done

let test_final_check_veto () =
  (* A final_check that rejects every assignment where v0 = v1 forces the
     solver to find a model with v0 <> v1. *)
  let s = S.create () in
  let v = fresh_vars s 2 in
  S.add_clause s [ S.pos_lit v.(0); S.pos_lit v.(1) ];
  let final_check s =
    if S.value_var s v.(0) = S.value_var s v.(1) then begin
      let lit_of i = if S.value_var s v.(i) then S.neg_lit v.(i) else S.pos_lit v.(i) in
      [ [ lit_of 0; lit_of 1 ] ]
    end
    else []
  in
  Alcotest.check result "sat" S.Sat (S.solve ~final_check s);
  Alcotest.(check bool) "differ" true (S.value_var s v.(0) <> S.value_var s v.(1))

let test_final_check_unsat () =
  (* Vetoing everything makes the instance unsatisfiable. *)
  let s = S.create () in
  let v = fresh_vars s 3 in
  let final_check s =
    let lit_of i = if S.value_var s v.(i) then S.neg_lit v.(i) else S.pos_lit v.(i) in
    [ [ lit_of 0; lit_of 1; lit_of 2 ] ]
  in
  Alcotest.check result "unsat" S.Unsat (S.solve ~final_check s)

(* --- differential testing against brute force ----------------------------- *)

let brute_force nvars clauses =
  let rec go assignment i =
    if i = nvars then
      List.for_all
        (fun clause ->
          List.exists
            (fun l ->
              let v = l / 2 and neg = l land 1 = 1 in
              if neg then not assignment.(v) else assignment.(v))
            clause)
        clauses
    else begin
      assignment.(i) <- false;
      go assignment (i + 1)
      ||
      (assignment.(i) <- true;
       go assignment (i + 1))
    end
  in
  go (Array.make nvars false) 0

let cnf_gen =
  let open QCheck.Gen in
  let nvars = 8 in
  let lit = map2 (fun v neg -> (2 * v) + if neg then 1 else 0) (int_range 0 (nvars - 1)) bool in
  let clause = list_size (int_range 1 3) lit in
  let cnf = list_size (int_range 1 40) clause in
  map (fun clauses -> (nvars, clauses)) cnf

let prop_matches_brute_force =
  QCheck.Test.make ~name:"cdcl matches brute force" ~count:500
    (QCheck.make cnf_gen)
    (fun (nvars, clauses) ->
      let s = S.create () in
      let v = fresh_vars s nvars in
      List.iter (fun c -> S.add_clause s (List.map (fun l -> if l land 1 = 1 then S.neg_lit v.(l / 2) else S.pos_lit v.(l / 2)) c)) clauses;
      let got = S.solve s = S.Sat in
      let expected = brute_force nvars clauses in
      if got <> expected then QCheck.Test.fail_reportf "solver=%b brute=%b" got expected;
      (* When satisfiable, the produced model must satisfy every clause. *)
      (not got)
      || List.for_all
           (fun c ->
             List.exists
               (fun l ->
                 let value = S.value_var s v.(l / 2) in
                 if l land 1 = 1 then not value else value)
               c)
           clauses)

let () =
  Alcotest.run "sat"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "no clauses" `Quick test_no_clauses;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "implication chain" `Quick test_chain_implications;
          Alcotest.test_case "final_check veto" `Quick test_final_check_veto;
          Alcotest.test_case "final_check unsat" `Quick test_final_check_unsat;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_matches_brute_force ]);
    ]
