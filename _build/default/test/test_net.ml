(* Tests for IPv4 addresses, prefixes, communities and topologies. *)

module Ip = Net.Ipv4
module P = Net.Prefix
module C = Net.Community
module T = Net.Topology

let test_ipv4 () =
  Alcotest.(check string) "roundtrip" "10.1.2.3" (Ip.to_string (Ip.of_string "10.1.2.3"));
  Alcotest.(check int) "value" ((10 lsl 24) lor (1 lsl 16) lor (2 lsl 8) lor 3) (Ip.of_string "10.1.2.3");
  Alcotest.(check (option int)) "bad octet" None (Ip.of_string_opt "10.1.2.256");
  Alcotest.(check (option int)) "not an ip" None (Ip.of_string_opt "banana");
  Alcotest.(check (option int)) "too few" None (Ip.of_string_opt "10.1.2");
  Alcotest.(check int) "octet 0" 10 (Ip.octet (Ip.of_string "10.1.2.3") 0);
  Alcotest.(check int) "octet 3" 3 (Ip.octet (Ip.of_string "10.1.2.3") 3);
  Alcotest.(check string) "max" "255.255.255.255" (Ip.to_string Ip.max)

let test_prefix () =
  let p = P.of_string "10.1.2.3/24" in
  Alcotest.(check string) "masked" "10.1.2.0/24" (P.to_string p);
  Alcotest.(check bool) "contains inside" true (P.contains p (Ip.of_string "10.1.2.200"));
  Alcotest.(check bool) "contains outside" false (P.contains p (Ip.of_string "10.1.3.0"));
  Alcotest.(check string) "first" "10.1.2.0" (Ip.to_string (P.first p));
  Alcotest.(check string) "last" "10.1.2.255" (Ip.to_string (P.last p));
  let q = P.of_string "10.1.0.0/16" in
  Alcotest.(check bool) "subset" true (P.subset p q);
  Alcotest.(check bool) "not subset" false (P.subset q p);
  Alcotest.(check bool) "overlaps" true (P.overlaps q p);
  Alcotest.(check bool) "disjoint" false (P.overlaps p (P.of_string "10.2.0.0/16"));
  Alcotest.(check string) "supernet" "10.1.0.0/16" (P.to_string (P.supernet p 16));
  Alcotest.(check string) "host" "1.2.3.4/32" (P.to_string (P.host (Ip.of_string "1.2.3.4")));
  let all = P.of_string "0.0.0.0/0" in
  Alcotest.(check bool) "default contains" true (P.contains all (Ip.of_string "200.1.1.1"));
  Alcotest.(check string) "default last" "255.255.255.255" (Ip.to_string (P.last all))

let test_community () =
  let c = C.of_string "65000:100" in
  Alcotest.(check string) "roundtrip" "65000:100" (C.to_string c);
  Alcotest.(check bool) "bad" true (C.of_string_opt "65000" = None);
  Alcotest.(check bool) "out of range" true (C.of_string_opt "70000:1" = None)

let test_topology () =
  let link a ai b bi =
    { T.a = { T.device = a; interface = ai }; b = { T.device = b; interface = bi } }
  in
  let t = T.empty in
  let t = T.add_link t (link "R1" "e0" "R2" "e0") in
  let t = T.add_link t (link "R1" "e1" "R3" "e0") in
  Alcotest.(check (list string)) "devices" [ "R1"; "R2"; "R3" ] (T.devices t);
  Alcotest.(check int) "degree R1" 2 (T.degree t "R1");
  Alcotest.(check int) "degree R2" 1 (T.degree t "R2");
  (match T.peer t "R1" "e1" with
   | Some (d, i) ->
     Alcotest.(check string) "peer dev" "R3" d;
     Alcotest.(check string) "peer if" "e0" i
   | None -> Alcotest.fail "peer missing");
  Alcotest.(check bool) "no peer" true (T.peer t "R2" "e9" = None);
  Alcotest.check_raises "self link" (Invalid_argument "Topology.add_link: self-link") (fun () ->
      ignore (T.add_link t (link "R1" "e5" "R1" "e6")))

let prop_prefix_contains_consistent =
  QCheck.Test.make ~name:"prefix contains first/last" ~count:300
    (QCheck.pair (QCheck.int_range 0 0xffffff) (QCheck.int_range 0 32))
    (fun (base, len) ->
      let p = P.make (base * 251) len in
      P.contains p (P.first p) && P.contains p (P.last p))

let prop_prefix_string_roundtrip =
  QCheck.Test.make ~name:"prefix string roundtrip" ~count:300
    (QCheck.pair (QCheck.int_range 0 0xffffff) (QCheck.int_range 0 32))
    (fun (base, len) ->
      let p = P.make (base * 65521) len in
      P.equal p (P.of_string (P.to_string p)))

let () =
  Alcotest.run "net"
    [
      ( "unit",
        [
          Alcotest.test_case "ipv4" `Quick test_ipv4;
          Alcotest.test_case "prefix" `Quick test_prefix;
          Alcotest.test_case "community" `Quick test_community;
          Alcotest.test_case "topology" `Quick test_topology;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_prefix_contains_consistent; prop_prefix_string_roundtrip ] );
    ]
