test/test_generators.ml: Alcotest Config Generators List Minesweeper Net Printf
