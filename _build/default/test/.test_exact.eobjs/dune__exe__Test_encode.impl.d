test/test_encode.ml: Alcotest Config Generators List Minesweeper Net Printf Smt Str
