test/test_minesweeper.mli:
