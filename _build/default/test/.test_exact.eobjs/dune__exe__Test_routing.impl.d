test/test_routing.ml: Alcotest Config Format List Net Routing
