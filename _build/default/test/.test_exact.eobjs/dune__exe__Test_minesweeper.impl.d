test/test_minesweeper.ml: Alcotest Config List Minesweeper Net Routing Smt
