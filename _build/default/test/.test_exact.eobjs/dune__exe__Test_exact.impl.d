test/test_exact.ml: Alcotest Exactnum List QCheck QCheck_alcotest
