test/test_smt.ml: Alcotest Array Exactnum Hashtbl List Printf QCheck QCheck_alcotest Smt
