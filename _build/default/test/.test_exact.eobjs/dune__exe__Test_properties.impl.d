test/test_properties.ml: Alcotest Array Buffer Config Exactnum Generators List Minesweeper Net Printf QCheck QCheck_alcotest Random Routing Smt Str
