test/test_config.ml: Alcotest Config List Net Option
